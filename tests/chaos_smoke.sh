#!/usr/bin/env bash
# Chaos battery (`ctest -L chaos`): deterministic fault schedules
# swept over every execution mode, asserting the campaign report is
# byte-identical to the fault-free serial run — or fails loudly
# naming the injected site — never hangs, never silently corrupts.
#
#  A. in-process + torn rename of a result-cache publish (and a warm
#     re-run over the damaged cache directory)
#  B. --jobs=2 + ENOSPC on a result-cache publish (the store-failure
#     boundary: log once, count it, continue uncached)
#  C. checkpoint recording + a seeded bit flip in a recorded blob
#     (the restoring run must cold-replay, not diverge)
#  D. --workers=2 + short write torn off a worker result stream,
#     with timeline collection on (shard retry)
#  E. --workers=2 + exactly one worker SIGKILLed mid-stream
#  F. dispatch campaign + exactly one runner SIGKILLed mid-stream
#     (dead-runner steal)
#  G. dispatch campaign + one runner wedged 20s mid-stream while its
#     heartbeat keeps beating (stalled-stream watchdog steal)
#  H. injected spawn failure: the run must fail loudly, naming the
#     fault site
#
# Usage: chaos_smoke.sh <fig-driver> <replay-plan>
#                       <taskpoint-dispatch>
set -euo pipefail

fig="$1"
replay="$2"
dispatch="$3"
test -x "$dispatch"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Two benchmarks x four thread counts = 8 jobs: shards and worker
# streams all hold several results, so mid-stream faults always
# leave work behind for retries and steals.
"$fig" --benchmarks=histogram,vector-operation --scale=0.02 \
    --jobs=2 --save-plan="$work/fig.tpplan" \
    >/dev/null 2>"$work/save.err"
grep -q "plan written to" "$work/save.err"

"$replay" --plan="$work/fig.tpplan" --jobs=1 \
    --csv="$work/base.csv" >"$work/base.txt" 2>"$work/base.err"

# Columns 1-6 are the deterministic simulation outcome; 7-8
# (ref_cached/sam_cached) are cache-hit provenance, which warm
# re-runs legitimately change, and the trailing columns are host
# timing.
det() { cut -d, -f1-6 "$1"; }
det "$work/base.csv" >"$work/base.det"
test "$(wc -l <"$work/base.det")" -eq 9 # header + 8 jobs

# identical <csv>: the campaign CSV matches the fault-free baseline.
identical() { det "$1" >"$1.det" && diff -u "$work/base.det" "$1.det"; }

# fired <stderr-file> <site>: the schedule actually injected there.
# (Works for faults firing in the driver process itself; workers and
# runners get their stderr redirected to files, so fleet-side faults
# are proven through their `once` marker file instead.)
fired() { grep -q "fault injection: site '$2'" "$1"; }

# --- A: torn rename of a cache publish, in-process ----------------
cat >"$work/A.plan" <<EOF
taskpoint-fault-plan v1
seed 7
on result_cache.publish 1 torn-rename
EOF
"$replay" --plan="$work/fig.tpplan" --jobs=1 \
    --cache-dir="$work/cacheA" --fault-plan="$work/A.plan" \
    --csv="$work/A.csv" >"$work/A.txt" 2>"$work/A.err"
fired "$work/A.err" result_cache.publish
identical "$work/A.csv"
# Warm re-run over the damaged directory: the torn entry must read
# as a miss and be repaired, with an identical report.
"$replay" --plan="$work/fig.tpplan" --jobs=1 \
    --cache-dir="$work/cacheA" \
    --csv="$work/A2.csv" >"$work/A2.txt" 2>"$work/A2.err"
identical "$work/A2.csv"

# --- B: ENOSPC on a cache publish, threaded -----------------------
cat >"$work/B.plan" <<EOF
taskpoint-fault-plan v1
on result_cache.publish 2 errno ENOSPC
EOF
"$replay" --plan="$work/fig.tpplan" --jobs=2 \
    --cache-dir="$work/cacheB" --fault-plan="$work/B.plan" \
    --csv="$work/B.csv" >"$work/B.txt" 2>"$work/B.err"
fired "$work/B.err" result_cache.publish
grep -q "store failed" "$work/B.err"    # satellite: warn once...
cat "$work/B.txt" "$work/B.err" | grep -q "store-errors=[1-9]"
identical "$work/B.csv"                 # ...and continue uncached

# --- C: bit flip in a recorded checkpoint blob --------------------
cat >"$work/C.plan" <<EOF
taskpoint-fault-plan v1
seed 11
on checkpoint.record 1 bit-flip
EOF
"$replay" --plan="$work/fig.tpplan" --jobs=1 \
    --checkpoint-dir="$work/ckptC" --fault-plan="$work/C.plan" \
    --csv="$work/C.csv" >"$work/C.txt" 2>"$work/C.err"
fired "$work/C.err" checkpoint.record
identical "$work/C.csv"
test -n "$(ls -A "$work/ckptC")"
# Checkpoint-parallel restore over the store holding one damaged
# blob: the damaged slice cold-replays, the answer does not change.
"$replay" --plan="$work/fig.tpplan" --jobs=4 \
    --checkpoint-dir="$work/ckptC" \
    --csv="$work/C2.csv" >"$work/C2.txt" 2>"$work/C2.err"
grep -q "checkpoints: expanded" "$work/C2.err"
identical "$work/C2.csv"

# --- D: short write torn off a worker stream, timelines on --------
cat >"$work/D.plan" <<EOF
taskpoint-fault-plan v1
once $work/D.marker
on worker.stream.append 2 short-write 5
EOF
"$replay" --plan="$work/fig.tpplan" --workers=2 \
    --trace-out="$work/D.trace.json" --fault-plan="$work/D.plan" \
    --csv="$work/D.csv" >"$work/D.txt" 2>"$work/D.err"
test -f "$work/D.marker.worker.stream.append.2" # fault fired
grep -q "retrying" "$work/D.err"        # the pool retried the shard
identical "$work/D.csv"
test -s "$work/D.trace.json"            # timelines still merged

# --- E: exactly one worker SIGKILLed mid-stream -------------------
cat >"$work/E.plan" <<EOF
taskpoint-fault-plan v1
once $work/E.marker
on worker.stream.append 1 abort
EOF
"$replay" --plan="$work/fig.tpplan" --workers=2 \
    --fault-plan="$work/E.plan" \
    --csv="$work/E.csv" >"$work/E.txt" 2>"$work/E.err"
test -f "$work/E.marker.worker.stream.append.1" # fault fired
grep -q "retrying" "$work/E.err"
identical "$work/E.csv"

# --- F: exactly one dispatch runner SIGKILLed mid-stream ----------
cat >"$work/F.plan" <<EOF
taskpoint-fault-plan v1
once $work/F.marker
on worker.stream.append 1 abort
EOF
"$dispatch" --plan="$work/fig.tpplan" --spool="$work/spoolF" \
    --runners=2 --shards=2 --dead-after=800 \
    --fault-plan="$work/F.plan" \
    --csv="$work/F.csv" >"$work/F.txt" 2>"$work/F.err"
test -f "$work/F.marker.worker.stream.append.1" # fault fired
grep -q "died" "$work/F.err"
grep -q "stole" "$work/F.err"
identical "$work/F.csv"

# --- G: one runner wedged mid-stream, heartbeat still beating -----
# The delay fires *after* an envelope is flushed, so the runner's
# stream stops growing while its heartbeat thread keeps beating —
# exactly the wedge only the stalled-stream watchdog can catch.
cat >"$work/G.plan" <<EOF
taskpoint-fault-plan v1
once $work/G.marker
on worker.stream.append 2 delay 20000
EOF
# --max-retries=8: under sanitizers a healthy-but-slow stream can
# trip the short watchdog span too; such steals are wasteful but
# safe, and the per-generation span doubling needs gen headroom to
# converge instead of failing the lineage.
"$dispatch" --plan="$work/fig.tpplan" --spool="$work/spoolG" \
    --runners=2 --shards=2 --dead-after=1000 --stalled-after=1500 \
    --max-retries=8 --fault-plan="$work/G.plan" \
    --csv="$work/G.csv" >"$work/G.txt" 2>"$work/G.err"
test -f "$work/G.marker.worker.stream.append.2" # fault fired
grep -q "stalled" "$work/G.err"
identical "$work/G.csv"

# --- H: injected spawn failure fails loudly, naming the site ------
cat >"$work/H.plan" <<EOF
taskpoint-fault-plan v1
on subprocess.spawn 1 errno EIO
EOF
if "$replay" --plan="$work/fig.tpplan" --workers=2 \
    --fault-plan="$work/H.plan" \
    --csv="$work/H.csv" >"$work/H.txt" 2>"$work/H.err"; then
    echo "chaos smoke: injected spawn failure did not fail the run" >&2
    exit 1
fi
grep -q "subprocess.spawn" "$work/H.err"

echo "chaos smoke: OK"
