/**
 * @file
 * Trace-observer battery (`ctest -L trace`): the Chrome trace-event
 * writer's exact JSON, the no-perturbation contract of attaching an
 * observer, JobTimeline (de)serialization including the BatchResult
 * wire format, per-core timeline statistics and the report sinks.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/binary_io.hh"
#include "harness/batch_runner.hh"
#include "harness/experiment.hh"
#include "harness/trace_report.hh"
#include "harness/worker.hh"
#include "sampling/taskpoint.hh"
#include "sim/trace_observer.hh"
#include "workloads/workloads.hh"

using namespace tp;

namespace {

work::WorkloadParams
smallParams()
{
    work::WorkloadParams wp;
    wp.scale = 0.02;
    wp.seed = 42;
    return wp;
}

harness::RunSpec
smallSpec()
{
    harness::RunSpec spec;
    spec.arch = cpu::highPerformanceConfig();
    spec.threads = 4;
    return spec;
}

/** A tiny handcrafted timeline with every feature populated. */
sim::JobTimeline
sampleTimeline()
{
    sim::JobTimeline t;
    t.cores = 2;
    t.totalCycles = 100;
    t.typeNames = {"init", "work \"quoted\""};
    t.tasks.push_back({/*id=*/7, /*type=*/0, /*core=*/0,
                       /*scheduled=*/0, /*start=*/5, /*end=*/30,
                       /*insts=*/1000,
                       static_cast<std::uint8_t>(sim::SimMode::Detailed),
                       /*ipc=*/1.5, /*readyAfter=*/3});
    t.tasks.push_back({/*id=*/8, /*type=*/1, /*core=*/1,
                       /*scheduled=*/10, /*start=*/20, /*end=*/90,
                       /*insts=*/4000,
                       static_cast<std::uint8_t>(sim::SimMode::Fast),
                       /*ipc=*/2.0, /*readyAfter=*/0});
    t.phases.push_back({0, sim::kWarmupPhase});
    t.phases.push_back({25, sim::kSamplingPhase});
    t.phases.push_back({60, sim::kFastForwardPhase});
    sim::TimelineSample s;
    s.boundary = 1;
    s.at = 60;
    s.l1Misses = 11;
    s.l2Misses = 5;
    s.l3Misses = 2;
    s.dramRequests = 9;
    s.coherenceInvalidations = 1;
    t.samples.push_back(s);
    return t;
}

bool
timelinesEqual(const sim::JobTimeline &a, const sim::JobTimeline &b)
{
    if (a.cores != b.cores || a.totalCycles != b.totalCycles ||
        a.typeNames != b.typeNames ||
        a.tasks.size() != b.tasks.size() ||
        a.phases.size() != b.phases.size() ||
        a.samples.size() != b.samples.size())
        return false;
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        const sim::TimelineTask &x = a.tasks[i];
        const sim::TimelineTask &y = b.tasks[i];
        if (x.id != y.id || x.type != y.type || x.core != y.core ||
            x.scheduled != y.scheduled || x.start != y.start ||
            x.end != y.end || x.insts != y.insts ||
            x.mode != y.mode || x.ipc != y.ipc ||
            x.readyAfter != y.readyAfter)
            return false;
    }
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
        if (a.phases[i].at != b.phases[i].at ||
            a.phases[i].phase != b.phases[i].phase)
            return false;
    }
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        const sim::TimelineSample &x = a.samples[i];
        const sim::TimelineSample &y = b.samples[i];
        if (x.boundary != y.boundary || x.at != y.at ||
            x.l1Misses != y.l1Misses || x.l2Misses != y.l2Misses ||
            x.l3Misses != y.l3Misses ||
            x.dramRequests != y.dramRequests ||
            x.coherenceInvalidations != y.coherenceInvalidations)
            return false;
    }
    return true;
}

} // namespace

TEST(JsonQuote, EscapesControlAndSpecialCharacters)
{
    EXPECT_EQ(sim::jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(sim::jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(sim::jsonQuote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(sim::jsonQuote("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
    EXPECT_EQ(sim::jsonQuote(std::string("x\x01y", 3)),
              "\"x\\u0001y\"");
}

TEST(ChromeTraceStream, ExactDocument)
{
    std::ostringstream out;
    sim::ChromeTraceStream stream(out);
    stream.metadata(1, 0, "process_name", "job 0");
    stream.sortIndex(1, 2, 5);
    stream.complete(1, 0, "work", "detailed", 10, 20, "\"id\":7");
    stream.complete(1, 1, "idle", "fast", 0, 0, "");
    stream.counter(1, "mem", 30, "\"l1\":4");
    stream.close();

    EXPECT_EQ(out.str(),
              "{\"traceEvents\":[\n"
              "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
              "\"name\":\"process_name\","
              "\"args\":{\"name\":\"job 0\"}},\n"
              "{\"ph\":\"M\",\"pid\":1,\"tid\":2,"
              "\"name\":\"thread_sort_index\","
              "\"args\":{\"sort_index\":5}},\n"
              "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"work\","
              "\"cat\":\"detailed\",\"ts\":10,\"dur\":20,"
              "\"args\":{\"id\":7}},\n"
              "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"idle\","
              "\"cat\":\"fast\",\"ts\":0,\"dur\":0},\n"
              "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"mem\","
              "\"ts\":30,\"args\":{\"l1\":4}}\n"
              "]}\n");
}

TEST(ChromeTraceStream, EmptyDocumentAndDoubleClose)
{
    std::ostringstream out;
    sim::ChromeTraceStream stream(out);
    stream.close();
    stream.close(); // idempotent
    EXPECT_EQ(out.str(), "{\"traceEvents\":[\n]}\n");
}

TEST(EmitTimelineEvents, ExactJson)
{
    std::ostringstream out;
    {
        sim::ChromeTraceStream stream(out);
        sim::emitTimelineEvents(stream, 3, "job 3: demo",
                                sampleTimeline());
    } // destructor closes

    EXPECT_EQ(
        out.str(),
        "{\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"pid\":3,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"job 3: demo\"}},\n"
        "{\"ph\":\"M\",\"pid\":3,\"tid\":0,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"core 0\"}},\n"
        "{\"ph\":\"M\",\"pid\":3,\"tid\":0,"
        "\"name\":\"thread_sort_index\","
        "\"args\":{\"sort_index\":0}},\n"
        "{\"ph\":\"M\",\"pid\":3,\"tid\":1,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"core 1\"}},\n"
        "{\"ph\":\"M\",\"pid\":3,\"tid\":1,"
        "\"name\":\"thread_sort_index\","
        "\"args\":{\"sort_index\":1}},\n"
        "{\"ph\":\"M\",\"pid\":3,\"tid\":2,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"sampling phase\"}},\n"
        "{\"ph\":\"M\",\"pid\":3,\"tid\":2,"
        "\"name\":\"thread_sort_index\","
        "\"args\":{\"sort_index\":2}},\n"
        "{\"ph\":\"X\",\"pid\":3,\"tid\":2,\"name\":\"warmup\","
        "\"cat\":\"phase\",\"ts\":0,\"dur\":25},\n"
        "{\"ph\":\"X\",\"pid\":3,\"tid\":2,\"name\":\"sampling\","
        "\"cat\":\"phase\",\"ts\":25,\"dur\":35},\n"
        "{\"ph\":\"X\",\"pid\":3,\"tid\":2,\"name\":\"fast-forward\","
        "\"cat\":\"phase\",\"ts\":60,\"dur\":40},\n"
        "{\"ph\":\"X\",\"pid\":3,\"tid\":0,\"name\":\"init\","
        "\"cat\":\"detailed\",\"ts\":5,\"dur\":25,"
        "\"args\":{\"id\":7,\"insts\":1000,\"ipc\":1.5,"
        "\"scheduled\":0,\"ready_after\":3}},\n"
        "{\"ph\":\"X\",\"pid\":3,\"tid\":1,"
        "\"name\":\"work \\\"quoted\\\"\","
        "\"cat\":\"fast\",\"ts\":20,\"dur\":70,"
        "\"args\":{\"id\":8,\"insts\":4000,\"ipc\":2,"
        "\"scheduled\":10,\"ready_after\":0}},\n"
        "{\"ph\":\"C\",\"pid\":3,\"tid\":0,"
        "\"name\":\"mem (cumulative)\",\"ts\":60,"
        "\"args\":{\"l1_misses\":11,\"l2_misses\":5,"
        "\"l3_misses\":2,\"dram\":9,\"coh_inval\":1}}\n"
        "]}\n");
}

TEST(TraceObserver, AttachingObserversDoesNotPerturbRuns)
{
    const trace::TaskTrace trace =
        work::generateWorkload("histogram", smallParams());
    const harness::RunSpec spec = smallSpec();
    const sampling::SamplingParams params =
        sampling::SamplingParams::lazy();

    const sim::SimResult bareDet = harness::runDetailed(trace, spec);
    sim::NullTraceObserver null;
    const sim::SimResult nullDet =
        harness::runDetailed(trace, spec, &null);
    sim::TimelineRecorder recDet;
    const sim::SimResult recordedDet =
        harness::runDetailed(trace, spec, &recDet);

    for (const sim::SimResult *r : {&nullDet, &recordedDet}) {
        EXPECT_EQ(r->totalCycles, bareDet.totalCycles);
        EXPECT_EQ(r->detailedTasks, bareDet.detailedTasks);
        EXPECT_EQ(r->detailedInsts, bareDet.detailedInsts);
        EXPECT_EQ(r->memStats.l1.misses, bareDet.memStats.l1.misses);
    }

    const harness::SampledOutcome bareSam =
        harness::runSampled(trace, spec, params);
    sim::TimelineRecorder recSam;
    const harness::SampledOutcome recordedSam =
        harness::runSampled(trace, spec, params, nullptr, &recSam);
    EXPECT_EQ(recordedSam.result.totalCycles,
              bareSam.result.totalCycles);
    EXPECT_EQ(recordedSam.result.detailedTasks,
              bareSam.result.detailedTasks);
    EXPECT_EQ(recordedSam.result.fastTasks, bareSam.result.fastTasks);
    EXPECT_EQ(recordedSam.result.detailedInsts,
              bareSam.result.detailedInsts);
    EXPECT_EQ(recordedSam.result.fastInsts, bareSam.result.fastInsts);
}

TEST(TraceObserver, RecorderCapturesWholeRun)
{
    const trace::TaskTrace trace =
        work::generateWorkload("histogram", smallParams());
    const harness::RunSpec spec = smallSpec();

    sim::TimelineRecorder det;
    const sim::SimResult detRes =
        harness::runDetailed(trace, spec, &det);
    const sim::JobTimeline &dt = det.timeline();
    EXPECT_EQ(dt.cores, spec.threads);
    EXPECT_EQ(dt.totalCycles, detRes.totalCycles);
    EXPECT_EQ(dt.tasks.size(),
              detRes.detailedTasks + detRes.fastTasks);
    // A reference run has no phase structure: exactly one
    // detailed-only phase from cycle 0, and no sample boundaries.
    ASSERT_EQ(dt.phases.size(), 1u);
    EXPECT_EQ(dt.phases[0].at, 0u);
    EXPECT_EQ(dt.phases[0].phase, sim::kDetailedOnlyPhase);
    EXPECT_TRUE(dt.samples.empty());
    for (const sim::TimelineTask &task : dt.tasks) {
        EXPECT_LT(task.core, dt.cores);
        EXPECT_LE(task.scheduled, task.start);
        EXPECT_LE(task.start, task.end);
        EXPECT_LE(task.end, dt.totalCycles);
        EXPECT_EQ(task.mode,
                  static_cast<std::uint8_t>(sim::SimMode::Detailed));
    }

    sim::TimelineRecorder sam;
    const harness::SampledOutcome samRes = harness::runSampled(
        trace, spec, sampling::SamplingParams::lazy(), nullptr, &sam);
    const sim::JobTimeline &st = sam.timeline();
    EXPECT_EQ(st.totalCycles, samRes.result.totalCycles);
    EXPECT_EQ(st.tasks.size(),
              samRes.result.detailedTasks + samRes.result.fastTasks);
    // A sampled run starts in warmup and must reach fast-forward at
    // least once (that transition defines a sample boundary).
    ASSERT_FALSE(st.phases.empty());
    EXPECT_EQ(st.phases[0].phase, sim::kWarmupPhase);
    EXPECT_FALSE(st.samples.empty());
    std::uint64_t lastBoundary = 0;
    for (const sim::TimelineSample &s : st.samples) {
        EXPECT_GT(s.boundary, lastBoundary);
        lastBoundary = s.boundary;
    }
}

TEST(TraceObserver, ComputeCoreStatsInvariants)
{
    const trace::TaskTrace trace =
        work::generateWorkload("histogram", smallParams());
    const harness::RunSpec spec = smallSpec();

    sim::TimelineRecorder rec;
    (void)harness::runSampled(trace, spec,
                              sampling::SamplingParams::lazy(),
                              nullptr, &rec);
    const sim::JobTimeline &t = rec.timeline();
    const std::vector<sim::CoreTimelineStats> stats =
        sim::computeCoreStats(t);
    ASSERT_EQ(stats.size(), t.cores);

    std::uint64_t tasks = 0;
    for (const sim::CoreTimelineStats &c : stats) {
        tasks += c.tasks;
        EXPECT_EQ(c.busy, c.detailedBusy + c.fastBusy);
        Cycles phaseSum = 0;
        for (Cycles p : c.phaseBusy)
            phaseSum += p;
        // Phases cover the whole run from cycle 0, so every busy
        // cycle falls into exactly one phase.
        EXPECT_EQ(phaseSum, c.busy);
        EXPECT_LE(c.busy, t.totalCycles);
    }
    EXPECT_EQ(tasks, t.tasks.size());
}

TEST(TraceObserver, TimelineSerializationRoundTrip)
{
    const sim::JobTimeline t = sampleTimeline();
    std::ostringstream out(std::ios::binary);
    sim::serializeTimeline(t, out);
    const std::string bytes = out.str();

    std::istringstream in(bytes, std::ios::binary);
    BinaryReader r(in, "roundtrip");
    const sim::JobTimeline back = sim::deserializeTimeline(r);
    EXPECT_TRUE(timelinesEqual(t, back));

    // Truncation anywhere must throw, never crash.
    for (std::size_t cut : {std::size_t{4}, bytes.size() / 2,
                            bytes.size() - 1}) {
        std::istringstream tin(bytes.substr(0, cut),
                               std::ios::binary);
        BinaryReader tr(tin, "truncated");
        EXPECT_THROW((void)sim::deserializeTimeline(tr), IoError);
    }
}

TEST(TraceObserver, BatchResultWireFormatCarriesTimeline)
{
    harness::BatchResult r;
    r.index = 5;
    r.label = "wire";
    r.timeline = sampleTimeline();

    std::ostringstream out(std::ios::binary);
    harness::serializeBatchResult(r, out);
    std::istringstream in(out.str(), std::ios::binary);
    const harness::BatchResult back =
        harness::deserializeBatchResult(in, "wire-test");
    EXPECT_EQ(back.index, r.index);
    ASSERT_TRUE(back.timeline.has_value());
    EXPECT_TRUE(timelinesEqual(*r.timeline, *back.timeline));

    harness::BatchResult bare;
    bare.index = 6;
    bare.label = "no timeline";
    std::ostringstream out2(std::ios::binary);
    harness::serializeBatchResult(bare, out2);
    std::istringstream in2(out2.str(), std::ios::binary);
    const harness::BatchResult back2 =
        harness::deserializeBatchResult(in2, "wire-test");
    EXPECT_FALSE(back2.timeline.has_value());
}

TEST(TraceObserver, BatchRunnerCollectsTimelinesOnlyWhenAsked)
{
    harness::ExperimentPlan plan;
    for (const char *mode : {"sampled", "reference"}) {
        harness::JobSpec j;
        j.label = mode;
        j.workload = "histogram";
        j.workloadParams = smallParams();
        j.spec = smallSpec();
        j.sampling = sampling::SamplingParams::lazy();
        j.mode = std::string(mode) == "sampled"
                     ? harness::BatchMode::Sampled
                     : harness::BatchMode::Reference;
        plan.jobs.push_back(j);
    }

    harness::BatchOptions plainOpts;
    harness::CollectingSink plain;
    harness::BatchRunner(plainOpts).run(plan, plain);

    harness::BatchOptions tracedOpts;
    tracedOpts.collectTimelines = true;
    harness::CollectingSink traced;
    harness::BatchRunner(tracedOpts).run(plan, traced);

    ASSERT_EQ(plain.results().size(), 2u);
    ASSERT_EQ(traced.results().size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_FALSE(plain.results()[i].timeline.has_value());
        ASSERT_TRUE(traced.results()[i].timeline.has_value());
        EXPECT_FALSE(traced.results()[i].timeline->tasks.empty());
    }
    // Collecting timelines must not change the simulated outcome.
    EXPECT_EQ(traced.results()[0].sampled->result.totalCycles,
              plain.results()[0].sampled->result.totalCycles);
    EXPECT_EQ(traced.results()[1].reference->totalCycles,
              plain.results()[1].reference->totalCycles);
}

TEST(TimelineStatsSinkTest, ExactCsv)
{
    std::ostringstream out;
    harness::TimelineStatsSink sink(out);
    sink.begin(1);
    harness::BatchResult r;
    r.index = 2;
    r.label = "a,b"; // exercises RFC-4180 quoting
    r.timeline = sampleTimeline();
    sink.consume(std::move(r));

    // Core 0: one detailed task [5,30) = 25 cycles; warmup covers
    // [0,25) -> 20, sampling [25,60) -> 5. Core 1: one fast task
    // [20,90) = 70; warmup 5, sampling 35, fast-forward 30.
    EXPECT_EQ(out.str(),
              "index,label,core,tasks,busy_cycles,idle_cycles,"
              "detailed_mode_cycles,fast_mode_cycles,"
              "warmup_phase_cycles,sampling_phase_cycles,"
              "fastforward_phase_cycles,detailed_phase_cycles,"
              "busy_fraction\n"
              "2,\"a,b\",0,1,25,75,25,0,20,5,0,0,0.25\n"
              "2,\"a,b\",1,1,70,30,0,70,5,35,30,0,0.7\n");
}

TEST(TimelineStatsSinkTest, SkipsResultsWithoutTimeline)
{
    std::ostringstream out;
    harness::TimelineStatsSink sink(out);
    sink.begin(1);
    harness::BatchResult r;
    r.index = 0;
    r.label = "cache replay";
    sink.consume(std::move(r));
    EXPECT_EQ(out.str(),
              "index,label,core,tasks,busy_cycles,idle_cycles,"
              "detailed_mode_cycles,fast_mode_cycles,"
              "warmup_phase_cycles,sampling_phase_cycles,"
              "fastforward_phase_cycles,detailed_phase_cycles,"
              "busy_fraction\n");
}

TEST(ChromeTraceSinkTest, MergesJobsAndSkipsTimelineless)
{
    std::ostringstream out;
    {
        harness::ChromeTraceSink sink(out);
        sink.begin(3);
        harness::BatchResult a;
        a.index = 0;
        a.label = "first";
        a.timeline = sampleTimeline();
        sink.consume(std::move(a));
        harness::BatchResult skip;
        skip.index = 1;
        skip.label = "cached";
        sink.consume(std::move(skip));
        harness::BatchResult b;
        b.index = 2;
        b.label = "second";
        b.timeline = sampleTimeline();
        sink.consume(std::move(b));
        sink.end();
    }
    const std::string doc = out.str();
    EXPECT_NE(doc.find("\"job 0: first\""), std::string::npos);
    EXPECT_EQ(doc.find("\"job 1: cached\""), std::string::npos);
    EXPECT_NE(doc.find("\"job 2: second\""), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":2"), std::string::npos);
    EXPECT_EQ(doc.rfind("\n]}\n"), doc.size() - 4);
}
