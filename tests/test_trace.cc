/**
 * @file
 * Unit and property tests for the trace library: builder invariants,
 * DAG structure, instruction-stream determinism and statistics,
 * serialization round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "trace/instr_stream.hh"
#include "trace/trace.hh"
#include "trace/trace_builder.hh"
#include "trace/trace_io.hh"

namespace tp::trace {
namespace {

KernelProfile
basicProfile()
{
    KernelProfile k;
    k.loadFrac = 0.25;
    k.storeFrac = 0.10;
    k.branchFrac = 0.10;
    return k;
}

TaskTrace
smallTrace()
{
    TraceBuilder b("test", 1);
    const TaskTypeId t0 = b.addTaskType("alpha", basicProfile());
    const TaskTypeId t1 = b.addTaskType("beta", basicProfile());
    const auto a = b.createTask(t0, 1000);
    const auto c = b.createTask(t1, 2000);
    const auto d = b.createTask(t0, 3000);
    b.addDependency(a, c);
    b.addDependency(a, d);
    b.addDependency(c, d);
    b.barrier();
    b.createTask(t1, 500);
    return b.build();
}

TEST(TraceBuilder, BuildsValidTrace)
{
    const TaskTrace t = smallTrace();
    EXPECT_EQ(t.name(), "test");
    EXPECT_EQ(t.types().size(), 2u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.numEpochs(), 2u);
    EXPECT_EQ(t.epochSize(0), 3u);
    EXPECT_EQ(t.epochSize(1), 1u);
    EXPECT_EQ(t.totalInstructions(), 6500u);
}

TEST(TraceBuilder, DependencyCsrIsCorrect)
{
    const TaskTrace t = smallTrace();
    EXPECT_EQ(t.inDegree(0), 0u);
    EXPECT_EQ(t.inDegree(1), 1u);
    EXPECT_EQ(t.inDegree(2), 2u);
    const auto succ0 = t.successors(0);
    ASSERT_EQ(succ0.size(), 2u);
    EXPECT_EQ(succ0[0], 1u);
    EXPECT_EQ(succ0[1], 2u);
    EXPECT_TRUE(t.successors(3).empty());
}

TEST(TraceBuilder, DuplicateEdgesCoalesced)
{
    TraceBuilder b("dup", 1);
    const auto ty = b.addTaskType("t", basicProfile());
    const auto a = b.createTask(ty, 100);
    const auto c = b.createTask(ty, 100);
    b.addDependency(a, c);
    b.addDependency(a, c);
    const TaskTrace t = b.build();
    EXPECT_EQ(t.successors(0).size(), 1u);
    EXPECT_EQ(t.inDegree(1), 1u);
}

TEST(TraceBuilder, RejectsBackwardDependency)
{
    TraceBuilder b("bad", 1);
    const auto ty = b.addTaskType("t", basicProfile());
    const auto a = b.createTask(ty, 100);
    const auto c = b.createTask(ty, 100);
    EXPECT_THROW(b.addDependency(c, a), SimError);
    EXPECT_THROW(b.addDependency(a, a), SimError);
}

TEST(TraceBuilder, RejectsZeroInstructions)
{
    TraceBuilder b("bad", 1);
    const auto ty = b.addTaskType("t", basicProfile());
    EXPECT_THROW(b.createTask(ty, 0), SimError);
}

TEST(TraceBuilder, RejectsUnknownType)
{
    TraceBuilder b("bad", 1);
    b.addTaskType("t", basicProfile());
    EXPECT_THROW(b.createTask(5, 100), SimError);
}

TEST(TraceBuilder, RejectsUnknownVariant)
{
    TraceBuilder b("bad", 1);
    const auto ty = b.addTaskType("t", basicProfile());
    EXPECT_THROW(b.createTask(ty, 100, 0, 3), SimError);
}

TEST(TraceBuilder, RejectsEmptyTrace)
{
    TraceBuilder b("empty", 1);
    EXPECT_THROW(b.build(), SimError);
    TraceBuilder b2("no-instances", 1);
    b2.addTaskType("t", basicProfile());
    EXPECT_THROW(b2.build(), SimError);
}

TEST(TraceBuilder, LeadingAndDoubleBarriersAreNoOps)
{
    TraceBuilder b("barriers", 1);
    const auto ty = b.addTaskType("t", basicProfile());
    b.barrier(); // leading: no-op
    b.createTask(ty, 100);
    b.barrier();
    b.barrier(); // double: no-op
    b.createTask(ty, 100);
    const TaskTrace t = b.build();
    EXPECT_EQ(t.numEpochs(), 2u);
}

TEST(TraceBuilder, VariantsSelectable)
{
    TraceBuilder b("var", 1);
    const auto ty = b.addTaskType("t", basicProfile());
    KernelProfile other = basicProfile();
    other.loadFrac = 0.5;
    const auto v = b.addVariant(ty, other);
    EXPECT_EQ(v, 1u);
    b.createTask(ty, 100, 0, v);
    const TaskTrace t = b.build();
    EXPECT_EQ(t.instance(0).variant, 1u);
    EXPECT_EQ(t.type(ty).variants.size(), 2u);
}

TEST(TraceBuilder, UniqueRegionsDoNotOverlap)
{
    TraceBuilder b("regions", 1);
    const auto ty = b.addTaskType("t", basicProfile());
    b.createTask(ty, 100, 4096);
    b.createTask(ty, 100, 4096);
    const TaskTrace t = b.build();
    const auto &i0 = t.instance(0);
    const auto &i1 = t.instance(1);
    EXPECT_GE(i1.privBase, i0.privBase + i0.privFootprint);
}

TEST(TraceBuilder, RegionPoolCycles)
{
    TraceBuilder b("pool", 1);
    const auto ty = b.addTaskType("t", basicProfile());
    b.setRegionPool(ty, 3, 8192);
    std::vector<Addr> bases;
    for (int i = 0; i < 6; ++i)
        b.createTask(ty, 100, 8192);
    const TaskTrace t = b.build();
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(t.instance(i).privBase,
                  t.instance(i + 3).privBase);
    }
    EXPECT_NE(t.instance(0).privBase, t.instance(1).privBase);
}

TEST(TraceBuilder, InstanceSeedsDiffer)
{
    const TaskTrace t = smallTrace();
    EXPECT_NE(t.instance(0).seed, t.instance(1).seed);
    EXPECT_NE(t.instance(1).seed, t.instance(2).seed);
}

TEST(TraceBuilder, SameSeedSameTrace)
{
    TraceBuilder b1("x", 9), b2("x", 9);
    const auto ty1 = b1.addTaskType("t", basicProfile());
    const auto ty2 = b2.addTaskType("t", basicProfile());
    b1.createTask(ty1, 100);
    b2.createTask(ty2, 100);
    EXPECT_EQ(b1.build().instance(0).seed,
              b2.build().instance(0).seed);
}

TEST(InstrStream, ProducesExactlyInstCountInstructions)
{
    const TaskTrace t = smallTrace();
    InstrStream s(t.type(0), t.instance(0));
    Instr in;
    InstCount n = 0;
    while (s.next(in))
        ++n;
    EXPECT_EQ(n, t.instance(0).instCount);
    EXPECT_TRUE(s.done());
    EXPECT_FALSE(s.next(in));
}

TEST(InstrStream, DeterministicReplay)
{
    const TaskTrace t = smallTrace();
    InstrStream s1(t.type(0), t.instance(0));
    InstrStream s2(t.type(0), t.instance(0));
    Instr a, b;
    while (s1.next(a)) {
        ASSERT_TRUE(s2.next(b));
        EXPECT_EQ(static_cast<int>(a.cls), static_cast<int>(b.cls));
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.depDist, b.depDist);
        EXPECT_EQ(a.execLat, b.execLat);
    }
}

TEST(InstrStream, FillBlockMatchesNextForEveryPattern)
{
    // The batch API must emit exactly the sequence per-instruction
    // next() calls produce, for every memory pattern and for chunk
    // sizes that do and do not divide the stream length.
    const InstCount chunks[] = {1, 2, 3, 7, 64, 256, 1000};
    for (int kind = 0; kind < 5; ++kind) {
        for (double shared_frac : {0.0, 0.4}) {
            TraceBuilder b("fb", 1);
            KernelProfile k = basicProfile();
            k.pattern.kind = static_cast<MemPatternKind>(kind);
            k.pattern.sharedFrac = shared_frac;
            k.loadFrac = 0.3;
            k.storeFrac = 0.1;
            const auto ty = b.addTaskType("t", k);
            b.createTask(ty, 12345);
            const TaskTrace t = b.build();

            InstrStream ref(t.type(0), t.instance(0));
            InstrStream blk(t.type(0), t.instance(0));
            std::vector<Instr> buf(1000);
            std::size_t chunk_i = 0;
            InstCount total = 0;
            while (!blk.done()) {
                const InstCount want =
                    chunks[chunk_i++ % std::size(chunks)];
                const InstCount got =
                    blk.fillBlock(buf.data(), want);
                ASSERT_GT(got, 0u);
                for (InstCount i = 0; i < got; ++i) {
                    Instr expect;
                    ASSERT_TRUE(ref.next(expect));
                    ASSERT_EQ(static_cast<int>(expect.cls),
                              static_cast<int>(buf[i].cls))
                        << "kind=" << kind << " instr " << total + i;
                    ASSERT_EQ(expect.addr, buf[i].addr);
                    ASSERT_EQ(expect.depDist, buf[i].depDist);
                    ASSERT_EQ(expect.execLat, buf[i].execLat);
                }
                total += got;
                ASSERT_EQ(blk.produced(), total);
            }
            Instr leftover;
            EXPECT_FALSE(ref.next(leftover));
            EXPECT_EQ(blk.fillBlock(buf.data(), 16), 0u);
            EXPECT_EQ(total, t.instance(0).instCount);
        }
    }
}

TEST(InstrStream, MixApproximatelyMatchesProfile)
{
    TraceBuilder b("mix", 1);
    KernelProfile k = basicProfile();
    k.loadFrac = 0.30;
    k.storeFrac = 0.10;
    k.branchFrac = 0.15;
    const auto ty = b.addTaskType("t", k);
    b.createTask(ty, 100000);
    const TaskTrace t = b.build();

    InstrStream s(t.type(0), t.instance(0));
    Instr in;
    std::map<InstrClass, int> counts;
    while (s.next(in))
        ++counts[in.cls];
    const double n = 100000.0;
    EXPECT_NEAR(counts[InstrClass::Load] / n, 0.30, 0.02);
    EXPECT_NEAR(counts[InstrClass::Store] / n, 0.10, 0.02);
    EXPECT_NEAR(counts[InstrClass::Branch] / n, 0.15, 0.02);
}

TEST(InstrStream, AddressesStayInRegions)
{
    TraceBuilder b("addr", 1);
    KernelProfile k = basicProfile();
    k.pattern.kind = MemPatternKind::RandomUniform;
    k.pattern.sharedFrac = 0.3;
    k.pattern.sharedFootprint = 64 * 1024;
    const auto ty = b.addTaskType("t", k);
    b.createTask(ty, 50000, 16 * 1024);
    const TaskTrace t = b.build();
    const TaskInstance &inst = t.instance(0);
    const Addr shared_base = sharedRegionBase(ty);

    InstrStream s(t.type(0), inst);
    Instr in;
    while (s.next(in)) {
        if (in.cls != InstrClass::Load && in.cls != InstrClass::Store)
            continue;
        const bool in_priv =
            in.addr >= inst.privBase &&
            in.addr < inst.privBase + inst.privFootprint;
        const bool in_shared =
            in.addr >= shared_base &&
            in.addr < shared_base + k.pattern.sharedFootprint;
        EXPECT_TRUE(in_priv || in_shared)
            << "address " << in.addr << " outside both regions";
    }
}

TEST(InstrStream, DepDistanceBounded)
{
    const TaskTrace t = smallTrace();
    InstrStream s(t.type(0), t.instance(2));
    Instr in;
    while (s.next(in))
        EXPECT_LE(in.depDist, 64u);
}

TEST(InstrStream, PointerChaseSerializesLoads)
{
    TraceBuilder b("chase", 1);
    KernelProfile k = basicProfile();
    k.pattern.kind = MemPatternKind::PointerChase;
    k.pattern.sharedFrac = 0.0;
    const auto ty = b.addTaskType("t", k);
    b.createTask(ty, 20000);
    const TaskTrace t = b.build();
    InstrStream s(t.type(0), t.instance(0));
    Instr in;
    int chained = 0, loads = 0;
    while (s.next(in)) {
        if (in.cls == InstrClass::Load) {
            ++loads;
            chained += in.depDist > 0 ? 1 : 0;
        }
    }
    // Every private chase load depends on the previous memory op.
    EXPECT_GT(double(chained) / double(loads), 0.95);
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const TaskTrace t = smallTrace();
    const std::string path = "/tmp/tp_test_trace.bin";
    serializeTrace(t, path);
    const TaskTrace r = deserializeTrace(path);
    std::remove(path.c_str());

    EXPECT_EQ(r.name(), t.name());
    ASSERT_EQ(r.types().size(), t.types().size());
    ASSERT_EQ(r.size(), t.size());
    EXPECT_EQ(r.numEpochs(), t.numEpochs());
    EXPECT_EQ(r.totalInstructions(), t.totalInstructions());
    for (TaskInstanceId i = 0; i < t.size(); ++i) {
        EXPECT_EQ(r.instance(i).seed, t.instance(i).seed);
        EXPECT_EQ(r.instance(i).instCount, t.instance(i).instCount);
        EXPECT_EQ(r.instance(i).privBase, t.instance(i).privBase);
        EXPECT_EQ(r.inDegree(i), t.inDegree(i));
        ASSERT_EQ(r.successors(i).size(), t.successors(i).size());
    }
    for (std::size_t ty = 0; ty < t.types().size(); ++ty) {
        EXPECT_EQ(r.type(ty).name, t.type(ty).name);
        EXPECT_EQ(r.type(ty).variants.size(),
                  t.type(ty).variants.size());
    }
}

TEST(TraceIo, RejectsGarbageFile)
{
    const std::string path = "/tmp/tp_test_garbage.bin";
    FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_THROW(deserializeTrace(path), SimError);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile)
{
    EXPECT_THROW(deserializeTrace("/tmp/definitely_missing_tp.bin"),
                 SimError);
}

} // namespace
} // namespace tp::trace
