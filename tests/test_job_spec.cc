/**
 * @file
 * Round-trip, digest and corruption batteries for the serializable
 * experiment descriptions (harness/job_spec) and for SampledOutcome
 * serialization (sim/result_io) — the prerequisites for shipping
 * whole experiment plans to out-of-process workers and for caching
 * sampled runs.
 *
 * Round trip: serialize → deserialize → re-serialize is
 * byte-identical for plans exercising every field, and a replayed
 * plan simulates to the same results as the in-memory original.
 *
 * Digests: jobSpecDigest/planDigest are stable across recomputation
 * and round trips, and sensitive to every field.
 *
 * Corruption: truncated streams, bad magic/version, corrupt enum
 * bytes and trailing garbage must raise a recoverable IoError,
 * never crash or silently succeed (mirroring test_trace_io).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/binary_io.hh"
#include "harness/batch_runner.hh"
#include "sim/result_io.hh"

namespace tp::harness {
namespace {

/** A plan exercising every serialized field at non-default values. */
ExperimentPlan
fullPlan()
{
    ExperimentPlan plan;
    plan.baseSeed = 0xdeadbeefULL;
    plan.deriveSeeds = false;

    JobSpec a;
    a.label = "workload job";
    a.workload = "histogram";
    a.workloadParams.scale = 0.75;
    a.workloadParams.instrScale = 1.5;
    a.workloadParams.seed = 7;
    a.spec.arch = cpu::lowPowerConfig();
    a.spec.arch.core.robSize = 97;
    a.spec.arch.memory.l2.scanResistantInsert = true;
    a.spec.threads = 24;
    a.spec.runtime.scheduler = rt::SchedulerKind::Locality;
    a.spec.runtime.dispatchOverhead = 321;
    a.spec.runtime.dispatchJitter = 17;
    a.spec.runtime.seed = 99;
    a.spec.quantum = 2048;
    a.spec.recordTasks = true;
    a.spec.noise.enabled = true;
    a.spec.noise.sigma = 0.05;
    a.spec.noise.preemptProb = 0.01;
    a.spec.noise.preemptMeanCycles = 12345.5;
    a.spec.noise.seed = 0xabc;
    a.sampling.warmup = 3;
    a.sampling.historySize = 7;
    a.sampling.period = 250;
    a.sampling.rareCutoff = 9;
    a.sampling.concurrencyHysteresis = 5;
    a.sampling.concurrencyTolerance = 0.375;
    a.mode = BatchMode::Both;
    plan.jobs.push_back(a);

    JobSpec b;
    b.label = "trace-file job";
    b.traceFile = "/some/dir/app.trace";
    b.spec.arch = cpu::highPerformanceConfig();
    b.spec.threads = 64;
    b.mode = BatchMode::Reference;
    plan.jobs.push_back(b);

    JobSpec c;
    c.label = "sampled job";
    c.workload = "cholesky";
    c.mode = BatchMode::Sampled;
    plan.jobs.push_back(c);

    return plan;
}

std::string
planBytes(const ExperimentPlan &plan)
{
    std::ostringstream os(std::ios::binary);
    serializePlan(plan, os);
    return os.str();
}

ExperimentPlan
fromBytes(const std::string &bytes)
{
    std::istringstream is(bytes, std::ios::binary);
    return deserializePlan(is, "<memory>");
}

TEST(JobSpecRoundTrip, PlanReserializesByteIdentical)
{
    const ExperimentPlan plan = fullPlan();
    const std::string bytes = planBytes(plan);
    const ExperimentPlan replay = fromBytes(bytes);
    EXPECT_EQ(planBytes(replay), bytes)
        << "serialize -> deserialize -> serialize must be a fixed "
           "point";
}

TEST(JobSpecRoundTrip, EveryFieldSurvives)
{
    const ExperimentPlan plan = fullPlan();
    const ExperimentPlan replay = fromBytes(planBytes(plan));

    EXPECT_EQ(replay.baseSeed, plan.baseSeed);
    EXPECT_EQ(replay.deriveSeeds, plan.deriveSeeds);
    ASSERT_EQ(replay.jobs.size(), plan.jobs.size());

    const JobSpec &a = plan.jobs[0];
    const JobSpec &r = replay.jobs[0];
    EXPECT_EQ(r.label, a.label);
    EXPECT_EQ(r.workload, a.workload);
    EXPECT_EQ(r.traceFile, a.traceFile);
    EXPECT_EQ(r.workloadParams.scale, a.workloadParams.scale);
    EXPECT_EQ(r.workloadParams.instrScale,
              a.workloadParams.instrScale);
    EXPECT_EQ(r.workloadParams.seed, a.workloadParams.seed);
    EXPECT_EQ(r.spec.arch.name, a.spec.arch.name);
    EXPECT_EQ(r.spec.arch.core.robSize, a.spec.arch.core.robSize);
    EXPECT_EQ(r.spec.arch.memory.l2.scanResistantInsert,
              a.spec.arch.memory.l2.scanResistantInsert);
    EXPECT_EQ(r.spec.arch.memory.l2Shared,
              a.spec.arch.memory.l2Shared);
    EXPECT_EQ(r.spec.arch.memory.hasL3, a.spec.arch.memory.hasL3);
    EXPECT_EQ(r.spec.arch.memory.dram.channels,
              a.spec.arch.memory.dram.channels);
    EXPECT_EQ(r.spec.threads, a.spec.threads);
    EXPECT_EQ(r.spec.runtime.scheduler, a.spec.runtime.scheduler);
    EXPECT_EQ(r.spec.runtime.dispatchOverhead,
              a.spec.runtime.dispatchOverhead);
    EXPECT_EQ(r.spec.runtime.dispatchJitter,
              a.spec.runtime.dispatchJitter);
    EXPECT_EQ(r.spec.runtime.seed, a.spec.runtime.seed);
    EXPECT_EQ(r.spec.quantum, a.spec.quantum);
    EXPECT_EQ(r.spec.recordTasks, a.spec.recordTasks);
    EXPECT_EQ(r.spec.noise.enabled, a.spec.noise.enabled);
    EXPECT_EQ(r.spec.noise.sigma, a.spec.noise.sigma);
    EXPECT_EQ(r.spec.noise.preemptProb, a.spec.noise.preemptProb);
    EXPECT_EQ(r.spec.noise.preemptMeanCycles,
              a.spec.noise.preemptMeanCycles);
    EXPECT_EQ(r.spec.noise.seed, a.spec.noise.seed);
    EXPECT_EQ(r.sampling.warmup, a.sampling.warmup);
    EXPECT_EQ(r.sampling.historySize, a.sampling.historySize);
    EXPECT_EQ(r.sampling.period, a.sampling.period);
    EXPECT_EQ(r.sampling.rareCutoff, a.sampling.rareCutoff);
    EXPECT_EQ(r.sampling.concurrencyHysteresis,
              a.sampling.concurrencyHysteresis);
    EXPECT_EQ(r.sampling.concurrencyTolerance,
              a.sampling.concurrencyTolerance);
    EXPECT_EQ(r.mode, a.mode);

    EXPECT_EQ(replay.jobs[1].traceFile, plan.jobs[1].traceFile);
    EXPECT_TRUE(replay.jobs[1].workload.empty());
    EXPECT_EQ(replay.jobs[2].mode, BatchMode::Sampled);
}

TEST(JobSpecRoundTrip, FileAndStreamFormatsAgree)
{
    const ExperimentPlan plan = fullPlan();
    const std::string path =
        testing::TempDir() + "tp_job_spec_plan.tpplan";
    serializePlan(plan, path);
    const ExperimentPlan fromFile = deserializePlan(path);
    EXPECT_EQ(planBytes(fromFile), planBytes(plan));
    std::remove(path.c_str());
}

TEST(JobSpecRoundTrip, ReplayedPlanSimulatesIdentically)
{
    // The whole point of plans: a plan that went through disk drives
    // the same simulations as the in-memory original.
    ExperimentPlan plan;
    JobSpec j;
    j.label = "replayed";
    j.workload = "histogram";
    j.workloadParams.scale = 0.02;
    j.spec.arch = cpu::highPerformanceConfig();
    j.spec.threads = 8;
    j.sampling = sampling::SamplingParams::lazy();
    j.mode = BatchMode::Both;
    plan.jobs.push_back(j);

    const ExperimentPlan replayed = fromBytes(planBytes(plan));
    BatchOptions opts;
    opts.jobs = 2;
    const BatchRunner runner(opts);
    const BatchResult a = runner.run(plan).front();
    const BatchResult b = runner.run(replayed).front();
    EXPECT_EQ(a.sampled->result.totalCycles,
              b.sampled->result.totalCycles);
    EXPECT_EQ(a.reference->totalCycles, b.reference->totalCycles);
    EXPECT_EQ(a.comparison->errorPct, b.comparison->errorPct);
}

TEST(JobSpecDigest, StableAcrossRecomputationAndRoundTrip)
{
    const ExperimentPlan plan = fullPlan();
    EXPECT_EQ(planDigest(plan), planDigest(plan));
    EXPECT_EQ(planDigest(fromBytes(planBytes(plan))),
              planDigest(plan));
    EXPECT_EQ(planDigest(plan).size(), 32u)
        << "digests are 32 hex chars (128 bits)";

    const JobSpec &job = plan.jobs[0];
    EXPECT_EQ(jobSpecDigest(job), jobSpecDigest(job));
    EXPECT_EQ(jobSpecDigest(job).size(), 32u);
}

TEST(JobSpecDigest, SensitiveToEveryFieldClass)
{
    const JobSpec base = fullPlan().jobs[0];
    const std::string d0 = jobSpecDigest(base);

    JobSpec j = base;
    j.label += "x";
    EXPECT_NE(jobSpecDigest(j), d0) << "label";
    j = base;
    j.workload = "cholesky";
    EXPECT_NE(jobSpecDigest(j), d0) << "workload";
    j = base;
    j.workloadParams.seed += 1;
    EXPECT_NE(jobSpecDigest(j), d0) << "workload seed";
    j = base;
    j.traceFile = "other.trace";
    EXPECT_NE(jobSpecDigest(j), d0) << "traceFile";
    j = base;
    j.spec.threads += 1;
    EXPECT_NE(jobSpecDigest(j), d0) << "threads";
    j = base;
    j.spec.arch.memory.l1.latency += 1;
    EXPECT_NE(jobSpecDigest(j), d0) << "arch";
    j = base;
    j.sampling.period = 100;
    EXPECT_NE(jobSpecDigest(j), d0) << "sampling";
    j = base;
    j.mode = BatchMode::Sampled;
    EXPECT_NE(jobSpecDigest(j), d0) << "mode";

    ExperimentPlan p1 = fullPlan();
    ExperimentPlan p2 = p1;
    p2.jobs.push_back(p2.jobs.front());
    EXPECT_NE(planDigest(p1), planDigest(p2)) << "job count";
    p2 = p1;
    p2.baseSeed += 1;
    EXPECT_NE(planDigest(p1), planDigest(p2)) << "baseSeed";
}

TEST(JobSpecCorruption, EveryPrefixFailsCleanlyOrRoundTrips)
{
    const std::string bytes = planBytes(fullPlan());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        try {
            (void)fromBytes(bytes.substr(0, len));
            FAIL() << "truncation at " << len << " must not decode";
        } catch (const IoError &) {
            // expected: recoverable, typed error
        }
    }
    EXPECT_NO_THROW((void)fromBytes(bytes));
}

TEST(JobSpecCorruption, BadMagicAndVersionThrowIoError)
{
    std::string bytes = planBytes(fullPlan());
    std::string badMagic = bytes;
    badMagic[0] = static_cast<char>(badMagic[0] ^ 0xff);
    EXPECT_THROW((void)fromBytes(badMagic), IoError);

    std::string badVersion = bytes;
    badVersion[8] = static_cast<char>(badVersion[8] ^ 0xff);
    EXPECT_THROW((void)fromBytes(badVersion), IoError);
}

TEST(JobSpecCorruption, TrailingBytesThrowIoError)
{
    EXPECT_THROW((void)fromBytes(planBytes(fullPlan()) + "x"),
                 IoError);
}

TEST(JobSpecCorruption, CorruptEnumBytesThrowIoError)
{
    // The mode byte sits right before the 24 bytes of v3 slice
    // coordinates (2x u32 + 2x u64) that end each serialized job;
    // the last job's fields end the plan payload.
    std::string bytes = planBytes(fullPlan());
    bytes[bytes.size() - 25] = static_cast<char>(0x7f);
    EXPECT_THROW((void)fromBytes(bytes), IoError);
}

TEST(JobSpecCorruption, CorruptSliceCoordinatesThrowIoError)
{
    // sliceIndex >= sliceCount (with sliceCount nonzero) is never
    // produced by expansion and must be rejected, not executed.
    std::string bytes = planBytes(fullPlan());
    bytes[bytes.size() - 24] = 1; // sliceCount = 1 (little endian)
    bytes[bytes.size() - 20] = 2; // sliceIndex = 2
    EXPECT_THROW((void)fromBytes(bytes), IoError);
}

TEST(JobSpecCorruption, MissingFileThrowsIoError)
{
    EXPECT_THROW(
        (void)deserializePlan("/nonexistent/tp_no_plan.tpplan"),
        IoError);
}

TEST(SampledOutcomeIo, RoundTripsBitIdentical)
{
    work::WorkloadParams wp;
    wp.scale = 0.02;
    const trace::TaskTrace t =
        work::generateWorkload("histogram", wp);
    RunSpec spec;
    spec.arch = cpu::highPerformanceConfig();
    spec.threads = 8;
    spec.recordTasks = true;
    const SampledOutcome fresh =
        runSampled(t, spec, sampling::SamplingParams::lazy());

    std::ostringstream os(std::ios::binary);
    sim::serializeSampledOutcome(fresh, os);
    const std::string bytes = os.str();

    std::istringstream is(bytes, std::ios::binary);
    const SampledOutcome replay =
        sim::deserializeSampledOutcome(is, "<memory>");

    // Re-serialization is a fixed point (covers doubles bit for
    // bit, wallSeconds included).
    std::ostringstream os2(std::ios::binary);
    sim::serializeSampledOutcome(replay, os2);
    EXPECT_EQ(os2.str(), bytes);

    EXPECT_EQ(replay.result.totalCycles, fresh.result.totalCycles);
    EXPECT_EQ(std::memcmp(&replay.result.wallSeconds,
                          &fresh.result.wallSeconds, sizeof(double)),
              0);
    EXPECT_EQ(replay.result.tasks.size(), fresh.result.tasks.size());
    EXPECT_EQ(replay.stats.fastTasks, fresh.stats.fastTasks);
    EXPECT_EQ(replay.phaseLog.size(), fresh.phaseLog.size());
    EXPECT_EQ(replay.validHistSizes, fresh.validHistSizes);
}

TEST(SampledOutcomeIo, TruncationThrowsIoError)
{
    work::WorkloadParams wp;
    wp.scale = 0.02;
    const trace::TaskTrace t =
        work::generateWorkload("histogram", wp);
    RunSpec spec;
    spec.arch = cpu::highPerformanceConfig();
    spec.threads = 4;
    const SampledOutcome fresh =
        runSampled(t, spec, sampling::SamplingParams::lazy());

    std::ostringstream os(std::ios::binary);
    sim::serializeSampledOutcome(fresh, os);
    const std::string bytes = os.str();

    for (double frac : {0.0, 0.25, 0.5, 0.9}) {
        SCOPED_TRACE(frac);
        std::istringstream is(
            bytes.substr(0, static_cast<std::size_t>(
                                double(bytes.size()) * frac)),
            std::ios::binary);
        EXPECT_THROW(
            (void)sim::deserializeSampledOutcome(is, "<memory>"),
            IoError);
    }
}

} // namespace
} // namespace tp::harness
