/**
 * @file
 * Draw-equivalence battery for the precomputed Rng samplers.
 *
 * The hot-path overhaul (PR 5) replaced per-draw distribution math
 * with precomputed samplers that must be *draw-for-draw identical*
 * to the naive formulations — same values, same number of next()
 * consumptions — or replayed experiments silently diverge. Each
 * test runs two generators with the same seed in lockstep, one
 * through the original Rng call, one through the sampler, over
 * millions of draws including the edge values (p ∈ {0, 1} and
 * beyond, s ≈ 1.0, n = 1, bounds with high rejection probability).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hh"

namespace tp {
namespace {

/** Lockstep comparison of bernoulli(p) against its sampler. */
void
expectBernoulliEquivalent(double p, int draws)
{
    Rng naive(0x5eed + 17);
    Rng fast(0x5eed + 17);
    const Rng::BernoulliSampler sampler(p);
    for (int i = 0; i < draws; ++i) {
        ASSERT_EQ(naive.bernoulli(p), sampler.sample(fast))
            << "p=" << p << " draw " << i;
    }
    // Same consumption: the generators must still agree.
    ASSERT_EQ(naive.next(), fast.next()) << "p=" << p;
}

TEST(BernoulliSampler, MatchesUniformComparisonOverMillions)
{
    expectBernoulliEquivalent(0.35, 2'000'000);
    expectBernoulliEquivalent(0.5, 2'000'000);
}

TEST(BernoulliSampler, EdgeProbabilities)
{
    // p = 0 and p = 1 (and out-of-range values) must behave like
    // `uniform01() < p`: never / always / never.
    for (double p : {0.0, 1.0, -0.25, 2.0, -0.0})
        expectBernoulliEquivalent(p, 100'000);
    // NaN: `u < NaN` is false.
    expectBernoulliEquivalent(
        std::numeric_limits<double>::quiet_NaN(), 10'000);
}

TEST(BernoulliSampler, ExtremeAndDenormalProbabilities)
{
    for (double p :
         {1e-12, 1.0 - 1e-12, 5e-324 /* min denormal */,
          std::nextafter(1.0, 0.0), std::nextafter(0.0, 1.0),
          0x1.0p-53, std::nextafter(0x1.0p-53, 0.0), 0.9999999,
          1.0000000000000002 /* nextafter(1, 2) */})
        expectBernoulliEquivalent(p, 200'000);
}

TEST(BernoulliSampler, ThresholdIsExactCeiling)
{
    // T must be the smallest integer with T * 2^-53 >= p — i.e.
    // (T-1) * 2^-53 < p <= T * 2^-53 — for every in-range p.
    constexpr double kTwoM53 = 0x1.0p-53;
    for (double p :
         {0.35, 0.5, 0.2, 0.28, 1e-12, 1.0 - 1e-12, 0x1.0p-53,
          0x1.8p-53, 5e-324, 0.9999999, std::nextafter(1.0, 0.0)}) {
        const std::uint64_t t =
            Rng::BernoulliSampler(p).threshold();
        if (t > 0) {
            EXPECT_LT(static_cast<double>(t - 1) * kTwoM53, p)
                << "p=" << p;
        }
        if (t < (1ULL << 53)) {
            EXPECT_GE(static_cast<double>(t) * kTwoM53, p)
                << "p=" << p;
        }
    }
}

/** Lockstep comparison of zipf(n, s) against its sampler. */
void
expectZipfEquivalent(std::uint64_t n, double s, int draws)
{
    Rng naive(0xabba + n);
    Rng fast(0xabba + n);
    const Rng::ZipfSampler sampler(n, s);
    for (int i = 0; i < draws; ++i) {
        ASSERT_EQ(naive.zipf(n, s), sampler.sample(fast))
            << "n=" << n << " s=" << s << " draw " << i;
    }
    ASSERT_EQ(naive.next(), fast.next()) << "n=" << n << " s=" << s;
}

TEST(ZipfSampler, MatchesRngZipfOverMillions)
{
    expectZipfEquivalent(16384, 0.8, 1'000'000);
    expectZipfEquivalent(1000, 0.9, 1'000'000);
}

TEST(ZipfSampler, EdgeParameters)
{
    expectZipfEquivalent(1, 0.8, 100'000);   // n = 1: always rank 0
    expectZipfEquivalent(1, 1.0, 100'000);
    expectZipfEquivalent(64, 1.0, 300'000);  // singularity guard
    expectZipfEquivalent(64, std::nextafter(1.0, 2.0), 100'000);
    expectZipfEquivalent(64, std::nextafter(1.0, 0.0), 100'000);
    expectZipfEquivalent(1000, 1.0 + 1e-9, 100'000);
    expectZipfEquivalent(2, 1e-9, 100'000);  // s -> 0: ~uniform
    expectZipfEquivalent(100, 0.5, 100'000);
    expectZipfEquivalent(7, 1.2, 100'000);   // s > 1
    expectZipfEquivalent(1ULL << 20, 0.99, 100'000);
}

/** Lockstep comparison of nextBounded against BoundedSampler. */
void
expectBoundedEquivalent(std::uint64_t bound, int draws)
{
    Rng naive(0xb0b + bound);
    Rng fast(0xb0b + bound);
    const Rng::BoundedSampler sampler(bound);
    for (int i = 0; i < draws; ++i) {
        ASSERT_EQ(naive.nextBounded(bound), sampler.sample(fast))
            << "bound=" << bound << " draw " << i;
    }
    ASSERT_EQ(naive.next(), fast.next()) << "bound=" << bound;
}

TEST(BoundedSampler, MatchesNextBounded)
{
    for (std::uint64_t bound :
         {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
          std::uint64_t{7}, std::uint64_t{8}, std::uint64_t{12},
          std::uint64_t{64}, std::uint64_t{100},
          std::uint64_t{4096}, std::uint64_t{1} << 16,
          (std::uint64_t{1} << 16) + 1})
        expectBoundedEquivalent(bound, 300'000);
}

TEST(BoundedSampler, HighRejectionBoundsStayInLockstep)
{
    // Bounds just above 2^63 reject ~half of all raw draws, so this
    // exercises the rejection loop's consumption equivalence hard.
    expectBoundedEquivalent((1ULL << 63) + 5, 50'000);
    expectBoundedEquivalent(std::numeric_limits<std::uint64_t>::max(),
                            50'000);
}

TEST(BoundedSampler, PowerOfTwoMaskMatchesModulo)
{
    for (std::uint64_t bound = 1; bound <= (1ULL << 20);
         bound <<= 1)
        expectBoundedEquivalent(bound, 20'000);
}

} // namespace
} // namespace tp
