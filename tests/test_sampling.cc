/**
 * @file
 * Unit and integration tests for TaskPoint: IPC histories, type
 * profiles, the controller's phase machine, sampling policies and
 * resampling triggers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cpu/arch_config.hh"
#include "harness/experiment.hh"
#include "sampling/ipc_history.hh"
#include "sampling/taskpoint.hh"
#include "sampling/type_profile.hh"
#include "sim/engine.hh"
#include "trace/trace_builder.hh"

namespace tp::sampling {
namespace {

TEST(IpcHistory, FifoReplacement)
{
    IpcHistory h(3);
    EXPECT_TRUE(h.empty());
    h.add(1.0);
    h.add(2.0);
    EXPECT_FALSE(h.full());
    h.add(3.0);
    EXPECT_TRUE(h.full());
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    h.add(7.0); // replaces the oldest (1.0)
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.size(), 3u);
}

TEST(IpcHistory, ClearEmpties)
{
    IpcHistory h(2);
    h.add(1.0);
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(IpcHistory, RejectsNonPositiveSamples)
{
    IpcHistory h(2);
    EXPECT_THROW(h.add(0.0), SimError);
    EXPECT_THROW(h.add(-1.0), SimError);
}

TEST(TypeProfile, PredictPrefersValidHistory)
{
    TypeProfile p(4);
    EXPECT_DOUBLE_EQ(p.predictIpc(), 0.0); // nothing at all
    p.addAnySample(1.0);
    EXPECT_DOUBLE_EQ(p.predictIpc(), 1.0); // all-samples fallback
    p.addValidSample(3.0);
    EXPECT_DOUBLE_EQ(p.predictIpc(), 3.0); // valid wins
}

TEST(TypeProfile, ValidSamplesAlsoEnterAllHistory)
{
    TypeProfile p(4);
    p.addValidSample(2.0);
    p.clearValid();
    EXPECT_DOUBLE_EQ(p.predictIpc(), 2.0); // still in all-history
}

TEST(TaskPointController, RejectsBadParams)
{
    trace::TraceBuilder b("x", 1);
    const auto ty = b.addTaskType("t", trace::KernelProfile{});
    b.createTask(ty, 100);
    const trace::TaskTrace t = b.build();
    SamplingParams p;
    p.historySize = 0;
    EXPECT_THROW(TaskPointController(t, p), SimError);
    p = SamplingParams{};
    p.rareCutoff = 0;
    EXPECT_THROW(TaskPointController(t, p), SimError);
    p = SamplingParams{};
    p.period = 0;
    EXPECT_THROW(TaskPointController(t, p), SimError);
}

TEST(TaskPointController, PolicyFactories)
{
    EXPECT_EQ(SamplingParams::lazy().period, kInfinitePeriod);
    EXPECT_EQ(SamplingParams::periodic(250).period, 250u);
    EXPECT_EQ(SamplingParams::lazy().warmup, 2u);
    EXPECT_EQ(SamplingParams::lazy().historySize, 4u);
    EXPECT_EQ(SamplingParams::lazy().rareCutoff, 5u);
}

/** A uniform single-type workload for controller-behaviour tests. */
trace::TaskTrace
uniformTrace(std::size_t n)
{
    trace::TraceBuilder b("uniform", 11);
    trace::KernelProfile k;
    k.loadFrac = 0.2;
    const auto ty = b.addTaskType("t", k);
    for (std::size_t i = 0; i < n; ++i)
        b.createTask(ty, 6000, 16 * 1024);
    return b.build();
}

harness::RunSpec
spec(std::uint32_t threads)
{
    harness::RunSpec s;
    s.arch = cpu::highPerformanceConfig();
    s.threads = threads;
    return s;
}

TEST(TaskPointController, LazySamplingPhasesProgress)
{
    const trace::TaskTrace t = uniformTrace(300);
    const harness::SampledOutcome out = harness::runSampled(
        t, spec(4), SamplingParams::lazy());

    // Warmup: W=2 per thread = 8; then sampling fills H=4; the rest
    // fast-forwards.
    EXPECT_GE(out.stats.warmupTasks, 8u);
    EXPECT_GE(out.stats.sampleTasks, 4u);
    EXPECT_GT(out.stats.fastTasks, 200u);
    EXPECT_EQ(out.stats.warmupTasks + out.stats.sampleTasks +
                  out.stats.fastTasks,
              300u);
    // Lazy: no periodic resampling on a uniform workload.
    EXPECT_EQ(out.stats.resamplesPeriod, 0u);
    // Phase log starts with warmup and reaches fast.
    ASSERT_GE(out.phaseLog.size(), 3u);
    EXPECT_EQ(static_cast<int>(out.phaseLog[0].to),
              static_cast<int>(Phase::Warmup));
}

TEST(TaskPointController, PeriodicPolicyResamples)
{
    const trace::TaskTrace t = uniformTrace(600);
    SamplingParams p = SamplingParams::periodic(20);
    const harness::SampledOutcome out =
        harness::runSampled(t, spec(4), p);
    EXPECT_GE(out.stats.resamplesPeriod, 2u);
    // Periodic must simulate more tasks in detail than lazy.
    const harness::SampledOutcome lazy_out = harness::runSampled(
        t, spec(4), SamplingParams::lazy());
    EXPECT_GT(out.stats.warmupTasks + out.stats.sampleTasks,
              lazy_out.stats.warmupTasks +
                  lazy_out.stats.sampleTasks);
}

TEST(TaskPointController, LargePeriodDegeneratesToLazy)
{
    const trace::TaskTrace t = uniformTrace(300);
    const harness::SampledOutcome per = harness::runSampled(
        t, spec(4), SamplingParams::periodic(100000));
    const harness::SampledOutcome lazy_out = harness::runSampled(
        t, spec(4), SamplingParams::lazy());
    EXPECT_EQ(per.stats.resamplesPeriod, 0u);
    EXPECT_EQ(per.result.totalCycles, lazy_out.result.totalCycles);
}

TEST(TaskPointController, NewTypeTriggersResample)
{
    // Type B first appears long after sampling finished.
    trace::TraceBuilder b("late-type", 13);
    trace::KernelProfile k;
    const auto ta = b.addTaskType("a", k);
    const auto tb = b.addTaskType("b", k);
    for (int i = 0; i < 200; ++i)
        b.createTask(ta, 4000);
    b.barrier();
    for (int i = 0; i < 50; ++i)
        b.createTask(tb, 4000);
    const trace::TaskTrace t = b.build();

    const harness::SampledOutcome out = harness::runSampled(
        t, spec(4), SamplingParams::lazy());
    EXPECT_GE(out.stats.resamplesNewType, 1u);
}

TEST(TaskPointController, ConcurrencyChangeTriggersResample)
{
    // Parallelism collapses from wide to a serial chain.
    trace::TraceBuilder b("narrowing", 17);
    trace::KernelProfile k;
    const auto ty = b.addTaskType("t", k);
    for (int i = 0; i < 300; ++i)
        b.createTask(ty, 4000);
    b.barrier();
    TaskInstanceId prev = b.createTask(ty, 4000);
    for (int i = 0; i < 60; ++i) {
        const TaskInstanceId cur = b.createTask(ty, 4000);
        b.addDependency(prev, cur);
        prev = cur;
    }
    const trace::TaskTrace t = b.build();

    const harness::SampledOutcome out = harness::runSampled(
        t, spec(8), SamplingParams::lazy());
    EXPECT_GE(out.stats.resamplesConcurrency, 1u);
}

TEST(TaskPointController, RareTypeUsesAllHistoryFallback)
{
    // One dominant type plus a genuinely rare one (every ~60 tasks):
    // sampling cuts off via R and the rare type fast-forwards on the
    // all-samples history without endless resampling.
    trace::TraceBuilder b("rare", 19);
    trace::KernelProfile k;
    const auto dom = b.addTaskType("dominant", k);
    const auto rare = b.addTaskType("rare", k);
    for (int i = 0; i < 600; ++i) {
        b.createTask(dom, 4000);
        if (i % 60 == 30)
            b.createTask(rare, 4000);
    }
    const trace::TaskTrace t = b.build();

    const harness::SampledOutcome out = harness::runSampled(
        t, spec(4), SamplingParams::lazy());
    // The rare type cannot stall sampling forever.
    EXPECT_GT(out.stats.fastTasks, 300u);
    // And at most a couple of new-type resamples for it.
    EXPECT_LE(out.stats.resamplesNewType, 2u);
}

TEST(TaskPointController, AllTasksAccountedInExactlyOneBucket)
{
    const trace::TaskTrace t = uniformTrace(250);
    const harness::SampledOutcome out = harness::runSampled(
        t, spec(3), SamplingParams::periodic(25));
    EXPECT_EQ(out.stats.warmupTasks + out.stats.sampleTasks +
                  out.stats.fastTasks,
              250u);
}

TEST(TaskPointController, ZeroWarmupIsAllowed)
{
    const trace::TaskTrace t = uniformTrace(200);
    SamplingParams p = SamplingParams::lazy();
    p.warmup = 0;
    const harness::SampledOutcome out =
        harness::runSampled(t, spec(4), p);
    EXPECT_GT(out.stats.fastTasks, 100u);
}

TEST(TaskPointController, SampledTimeTracksReference)
{
    const trace::TaskTrace t = uniformTrace(400);
    const sim::SimResult ref = harness::runDetailed(t, spec(4));
    const harness::SampledOutcome out = harness::runSampled(
        t, spec(4), SamplingParams::lazy());
    const harness::ErrorSpeedup es =
        harness::compare(ref, out.result);
    EXPECT_LT(es.errorPct, 5.0);
    EXPECT_LT(es.detailFraction, 0.25);
}

/**
 * Property sweep: on a uniform workload the controller must stay
 * accurate for every (W, H, policy, threads) combination.
 */
class SamplingPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::size_t, std::uint64_t,
                     std::uint32_t>>
{
};

TEST_P(SamplingPropertyTest, UniformWorkloadStaysAccurate)
{
    const auto [w, h, period, threads] = GetParam();
    const trace::TaskTrace t = uniformTrace(400);
    SamplingParams p;
    p.warmup = w;
    p.historySize = h;
    p.period = period == 0 ? kInfinitePeriod : period;

    const sim::SimResult ref = harness::runDetailed(t, spec(threads));
    const harness::SampledOutcome out =
        harness::runSampled(t, spec(threads), p);
    const harness::ErrorSpeedup es =
        harness::compare(ref, out.result);
    // Without warmup the paper itself reports ~8-10% error (Fig. 6a:
    // cold samples are not representative); with W >= 1 the model
    // must stay accurate.
    const double bound = w == 0 ? 25.0 : 8.0;
    EXPECT_LT(es.errorPct, bound)
        << "W=" << w << " H=" << h << " P=" << period
        << " threads=" << threads;
    EXPECT_LT(es.detailFraction, 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, SamplingPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 4),   // W
                       ::testing::Values(1, 4, 8),      // H
                       ::testing::Values(0, 50, 250),   // P (0 = inf)
                       ::testing::Values(2, 8)));       // threads

} // namespace
} // namespace tp::sampling
