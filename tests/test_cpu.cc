/**
 * @file
 * Unit tests for the detailed core model (ROB occupancy analysis) and
 * the architecture configurations.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cpu/arch_config.hh"
#include "cpu/rob_core.hh"
#include "memory/hierarchy.hh"
#include "trace/trace_builder.hh"

namespace tp::cpu {
namespace {

/** Build a single-instance trace with the given profile/size. */
trace::TaskTrace
makeTrace(const trace::KernelProfile &k, InstCount insts,
          Addr footprint = 64 * 1024)
{
    trace::TraceBuilder b("core-test", 7);
    const auto ty = b.addTaskType("t", k);
    b.createTask(ty, insts, footprint);
    return b.build();
}

/** Run one task to completion; @return cycles taken. */
cpu::DetailedRunStats
runTask(const trace::TaskTrace &t, const ArchConfig &arch,
        Cycles start = 0)
{
    mem::Hierarchy h(arch.memory, 1);
    RobCore core(arch.core, h, 0);
    core.beginTask(t.type(0), t.instance(0), start);
    while (!core.step(1024)) {
    }
    return core.runStats();
}

trace::KernelProfile
pureCompute()
{
    trace::KernelProfile k;
    k.loadFrac = 0.0;
    k.storeFrac = 0.0;
    k.branchFrac = 0.0;
    k.fpFrac = 0.0;
    k.mulFrac = 0.0;
    k.indepFrac = 1.0; // fully independent single-cycle ops
    return k;
}

TEST(RobCore, IpcBoundedByIssueWidth)
{
    const ArchConfig arch = highPerformanceConfig();
    const auto stats = runTask(makeTrace(pureCompute(), 50000), arch);
    EXPECT_LE(stats.ipc(), double(arch.core.issueWidth) + 0.01);
    // Fully independent 1-cycle ops should come close to the width.
    EXPECT_GT(stats.ipc(), double(arch.core.issueWidth) * 0.8);
}

TEST(RobCore, DependencyChainsSerialize)
{
    trace::KernelProfile chain = pureCompute();
    chain.indepFrac = 0.0;
    chain.ilpMean = 0.6; // dep distance ~1: serial chain
    const ArchConfig arch = highPerformanceConfig();
    const auto stats = runTask(makeTrace(chain, 50000), arch);
    // A serial chain of 1-cycle ops cannot exceed IPC 1.
    EXPECT_LE(stats.ipc(), 1.05);
}

TEST(RobCore, WiderMachineIsFaster)
{
    trace::KernelProfile k;
    k.loadFrac = 0.15;
    k.storeFrac = 0.05;
    const auto hp = runTask(makeTrace(k, 60000),
                            highPerformanceConfig());
    const auto lp = runTask(makeTrace(k, 60000), lowPowerConfig());
    EXPECT_GT(hp.ipc(), lp.ipc());
}

TEST(RobCore, MemoryLatencyReducesIpc)
{
    trace::KernelProfile mem_heavy;
    mem_heavy.loadFrac = 0.45;
    mem_heavy.pattern.kind = trace::MemPatternKind::RandomUniform;
    const auto m = runTask(makeTrace(mem_heavy, 40000, 1 << 20),
                           highPerformanceConfig());
    const auto c = runTask(makeTrace(pureCompute(), 40000),
                           highPerformanceConfig());
    EXPECT_LT(m.ipc(), c.ipc() * 0.5);
    EXPECT_GT(m.l1Misses, 100u);
}

TEST(RobCore, CountsInstructionClasses)
{
    trace::KernelProfile k;
    k.loadFrac = 0.3;
    k.storeFrac = 0.1;
    const auto stats = runTask(makeTrace(k, 50000),
                               highPerformanceConfig());
    EXPECT_EQ(stats.instructions, 50000u);
    EXPECT_NEAR(double(stats.loads) / 50000.0, 0.3, 0.02);
    EXPECT_NEAR(double(stats.stores) / 50000.0, 0.1, 0.02);
}

TEST(RobCore, StartOffsetShiftsFinishTime)
{
    const trace::TaskTrace t = makeTrace(pureCompute(), 10000);
    const ArchConfig arch = highPerformanceConfig();

    mem::Hierarchy h1(arch.memory, 1);
    RobCore c1(arch.core, h1, 0);
    c1.beginTask(t.type(0), t.instance(0), 0);
    while (!c1.step(512)) {
    }
    mem::Hierarchy h2(arch.memory, 1);
    RobCore c2(arch.core, h2, 0);
    c2.beginTask(t.type(0), t.instance(0), 1000);
    while (!c2.step(512)) {
    }
    EXPECT_EQ(c2.finishTime(), c1.finishTime() + 1000);
}

TEST(RobCore, DeterministicAcrossQuantumSizes)
{
    trace::KernelProfile k;
    k.loadFrac = 0.25;
    const trace::TaskTrace t = makeTrace(k, 30000);
    const ArchConfig arch = highPerformanceConfig();

    mem::Hierarchy h1(arch.memory, 1);
    RobCore c1(arch.core, h1, 0);
    c1.beginTask(t.type(0), t.instance(0), 0);
    while (!c1.step(64)) {
    }
    mem::Hierarchy h2(arch.memory, 1);
    RobCore c2(arch.core, h2, 0);
    c2.beginTask(t.type(0), t.instance(0), 0);
    while (!c2.step(8192)) {
    }
    EXPECT_EQ(c1.finishTime(), c2.finishTime());
}

TEST(RobCore, ReusableAcrossTasks)
{
    const trace::TaskTrace t = makeTrace(pureCompute(), 5000);
    const ArchConfig arch = highPerformanceConfig();
    mem::Hierarchy h(arch.memory, 1);
    RobCore core(arch.core, h, 0);

    core.beginTask(t.type(0), t.instance(0), 0);
    while (!core.step(512)) {
    }
    const Cycles first = core.finishTime();
    EXPECT_FALSE(core.busy());

    core.beginTask(t.type(0), t.instance(0), first);
    while (!core.step(512)) {
    }
    EXPECT_GT(core.finishTime(), first);
}

TEST(RobCore, SmallRobLimitsMemoryParallelism)
{
    trace::KernelProfile k;
    k.loadFrac = 0.4;
    k.indepFrac = 1.0; // maximal potential MLP
    k.pattern.kind = trace::MemPatternKind::RandomUniform;

    ArchConfig big = highPerformanceConfig();
    ArchConfig small = big;
    small.core.robSize = 16;

    const auto b = runTask(makeTrace(k, 40000, 4 << 20), big);
    const auto s = runTask(makeTrace(k, 40000, 4 << 20), small);
    // Same widths, same memory: the small ROB must be slower because
    // it can keep fewer misses in flight.
    EXPECT_GT(b.ipc(), s.ipc() * 1.3);
}

TEST(ArchConfig, TableTwoParameters)
{
    const ArchConfig hp = highPerformanceConfig();
    EXPECT_EQ(hp.core.robSize, 168u);
    EXPECT_EQ(hp.core.issueWidth, 4u);
    EXPECT_EQ(hp.core.commitWidth, 4u);
    EXPECT_EQ(hp.memory.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(hp.memory.l1.assoc, 8u);
    EXPECT_EQ(hp.memory.l1.latency, 4u);
    EXPECT_EQ(hp.memory.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(hp.memory.l2.latency, 11u);
    EXPECT_FALSE(hp.memory.l2Shared);
    EXPECT_TRUE(hp.memory.hasL3);
    EXPECT_EQ(hp.memory.l3.sizeBytes, 20u * 1024 * 1024);
    EXPECT_EQ(hp.memory.l3.assoc, 20u);
    EXPECT_EQ(hp.memory.l3.latency, 28u);

    const ArchConfig lp = lowPowerConfig();
    EXPECT_EQ(lp.core.robSize, 40u);
    EXPECT_EQ(lp.core.issueWidth, 3u);
    EXPECT_EQ(lp.core.commitWidth, 3u);
    EXPECT_EQ(lp.memory.l1.assoc, 2u);
    EXPECT_TRUE(lp.memory.l2Shared);
    EXPECT_EQ(lp.memory.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(lp.memory.l2.assoc, 16u);
    EXPECT_EQ(lp.memory.l2.latency, 21u);
    EXPECT_FALSE(lp.memory.hasL3);
}

TEST(ArchConfig, LookupByName)
{
    EXPECT_EQ(archConfigByName("highperf").name, "highperf");
    EXPECT_EQ(archConfigByName("lowpower").name, "lowpower");
    EXPECT_THROW(archConfigByName("quantum"), SimError);
}

} // namespace
} // namespace tp::cpu
