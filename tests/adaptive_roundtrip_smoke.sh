#!/usr/bin/env bash
# Smoke test of the adaptive sampling policy end to end
# (`ctest -L smoke`):
#
#  1. A figure driver runs with --target-error=2%, which swaps its
#     figure-default policy for the adaptive one; the report must
#     carry the adaptive-diagnostics table, and the plan it saves
#     must replay byte-identically in a fresh driver process.
#  2. replay_plan executes the adaptive plan in-process (--jobs=1,
#     --jobs=2) and across spawned workers (--workers=2); the
#     timing-stripped CSV columns must be identical in all three.
#
# Usage: adaptive_roundtrip_smoke.sh <fig-driver> <replay-plan>
set -euo pipefail

fig="$1"
replay="$2"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

common=(--benchmarks=histogram,vector-operation,reduction
        --scale=0.02 --target-error=2%)

# The deterministic prefix of a figure report: everything up to the
# first blank line (the error table; speedups are wall-clock).
det_prefix() { awk '/^$/{exit} {print}' "$1"; }

# 1. Adaptive figure run: diagnostics present, plan replays.
"$fig" "${common[@]}" --jobs=2 --save-plan="$work/adaptive.tpplan" \
    >"$work/run1.txt" 2>"$work/run1.err"
grep -q "plan written to" "$work/run1.err"
grep -q "adaptive sampling diagnostics" "$work/run1.txt"
grep -q "CI target\|rare cutoff" "$work/run1.txt"

"$fig" "${common[@]}" --jobs=2 --plan="$work/adaptive.tpplan" \
    >"$work/run2.txt" 2>"$work/run2.err"
grep -q "replaying plan" "$work/run2.err"
det_prefix "$work/run1.txt" >"$work/run1.det"
det_prefix "$work/run2.txt" >"$work/run2.det"
test -s "$work/run1.det"
diff -u "$work/run1.det" "$work/run2.det"

# 2. The same plan through replay_plan, serial vs. threaded vs.
# multi-process: columns 1-8 are deterministic, the trailing
# wall_speedup/host_seconds columns are host timing.
"$replay" --plan="$work/adaptive.tpplan" --jobs=1 \
    --csv="$work/serial.csv" >"$work/replay1.txt"
"$replay" --plan="$work/adaptive.tpplan" --jobs=2 \
    --csv="$work/jobs.csv" >"$work/replay2.txt"
"$replay" --plan="$work/adaptive.tpplan" --workers=2 \
    --csv="$work/workers.csv" >"$work/replay3.txt"

for mode in serial jobs workers; do
    cut -d, -f1-8 "$work/$mode.csv" >"$work/$mode.csv.det"
done
test "$(wc -l <"$work/serial.csv.det")" -gt 1
diff -u "$work/serial.csv.det" "$work/jobs.csv.det"
diff -u "$work/serial.csv.det" "$work/workers.csv.det"

echo "adaptive roundtrip smoke: OK"
