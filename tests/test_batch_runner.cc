/**
 * @file
 * Tests of the parallel experiment batch runner: ordered result
 * collection, per-job deterministic seeding, exception propagation,
 * and — the contract the whole design rests on — bit-identical
 * reported statistics for any worker count.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <set>

#include "common/logging.hh"
#include "harness/batch_runner.hh"
#include "harness/result_cache.hh"

namespace tp::harness {
namespace {

work::WorkloadParams
tinyScale()
{
    work::WorkloadParams p;
    p.scale = 0.02; // a handful of tasks per type: fast
    p.seed = 42;
    return p;
}

/** A small mixed batch over two workloads and two policies. */
std::vector<BatchJob>
smallBatch()
{
    std::vector<BatchJob> jobs;
    for (const char *name : {"histogram", "vector-operation"}) {
        for (bool lazy : {true, false}) {
            BatchJob j;
            j.label = std::string(name) + (lazy ? " lazy" : " p100");
            j.workload = name;
            j.workloadParams = tinyScale();
            j.spec.arch = cpu::highPerformanceConfig();
            j.spec.threads = 8;
            j.sampling = lazy
                             ? sampling::SamplingParams::lazy()
                             : sampling::SamplingParams::periodic(100);
            j.mode = BatchMode::Both;
            jobs.push_back(j);
        }
    }
    return jobs;
}

/** The deterministic (host-timing-free) fields of a SimResult. */
struct Fingerprint
{
    Cycles totalCycles;
    std::uint64_t detailedTasks;
    std::uint64_t fastTasks;
    InstCount detailedInsts;
    InstCount fastInsts;
    std::size_t taskRecords;

    bool
    operator==(const Fingerprint &o) const
    {
        return totalCycles == o.totalCycles &&
               detailedTasks == o.detailedTasks &&
               fastTasks == o.fastTasks &&
               detailedInsts == o.detailedInsts &&
               fastInsts == o.fastInsts &&
               taskRecords == o.taskRecords;
    }
};

Fingerprint
fingerprint(const sim::SimResult &r)
{
    return Fingerprint{r.totalCycles, r.detailedTasks, r.fastTasks,
                       r.detailedInsts, r.fastInsts, r.tasks.size()};
}

TEST(BatchRunner, JobSeedIsDeterministicAndIndexSensitive)
{
    EXPECT_EQ(BatchRunner::jobSeed(42, 0), BatchRunner::jobSeed(42, 0));
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 64; ++i)
        seeds.insert(BatchRunner::jobSeed(42, i));
    EXPECT_EQ(seeds.size(), 64u) << "per-index seeds must not collide";
    EXPECT_NE(BatchRunner::jobSeed(1, 0), BatchRunner::jobSeed(2, 0));
}

TEST(BatchRunner, ResultsArriveInSubmissionOrder)
{
    BatchOptions opts;
    opts.jobs = 4;
    const std::vector<BatchJob> jobs = smallBatch();
    const std::vector<BatchResult> results =
        BatchRunner(opts).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].label, jobs[i].label);
        ASSERT_TRUE(results[i].sampled.has_value());
        ASSERT_TRUE(results[i].reference.has_value());
        ASSERT_TRUE(results[i].comparison.has_value());
    }
}

TEST(BatchRunner, EightJobsBitIdenticalToOneJob)
{
    // The acceptance test of the parallel runner: everything reported
    // except host wall-clock must be bit-identical between a serial
    // and a heavily oversubscribed parallel run.
    const std::vector<BatchJob> jobs = smallBatch();

    BatchOptions serial;
    serial.jobs = 1;
    const std::vector<BatchResult> a = BatchRunner(serial).run(jobs);

    BatchOptions parallel;
    parallel.jobs = 8;
    const std::vector<BatchResult> b =
        BatchRunner(parallel).run(jobs);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].label);
        EXPECT_TRUE(fingerprint(a[i].sampled->result) ==
                    fingerprint(b[i].sampled->result));
        EXPECT_TRUE(fingerprint(*a[i].reference) ==
                    fingerprint(*b[i].reference));
        // Error is a pure function of the two cycle counts.
        EXPECT_EQ(a[i].comparison->errorPct, b[i].comparison->errorPct);
        EXPECT_EQ(a[i].comparison->detailFraction,
                  b[i].comparison->detailFraction);
        // Sampling statistics, phase for phase.
        const sampling::SamplingStats &sa = a[i].sampled->stats;
        const sampling::SamplingStats &sb = b[i].sampled->stats;
        EXPECT_EQ(sa.warmupTasks, sb.warmupTasks);
        EXPECT_EQ(sa.sampleTasks, sb.sampleTasks);
        EXPECT_EQ(sa.fastTasks, sb.fastTasks);
        EXPECT_EQ(sa.resamples, sb.resamples);
        EXPECT_EQ(sa.phaseChanges, sb.phaseChanges);
    }
}

TEST(BatchRunner, SharedTraceMatchesPerJobGeneration)
{
    // A job given a pre-built trace must equal a job that generates
    // the same trace itself (same workload, same seed).
    const trace::TaskTrace shared =
        work::generateWorkload("histogram", tinyScale());

    BatchJob generating;
    generating.label = "own";
    generating.workload = "histogram";
    generating.workloadParams = tinyScale();
    generating.spec.arch = cpu::highPerformanceConfig();
    generating.spec.threads = 8;
    generating.sampling = sampling::SamplingParams::lazy();

    BatchJob sharing = generating;
    sharing.label = "shared";
    sharing.trace = &shared;

    BatchOptions opts;
    opts.jobs = 2;
    opts.deriveSeeds = false; // keep the workloadParams seed
    const std::vector<BatchResult> results =
        BatchRunner(opts).run({generating, sharing});
    EXPECT_TRUE(fingerprint(results[0].sampled->result) ==
                fingerprint(results[1].sampled->result));
}

TEST(BatchRunner, DerivedSeedsChangeWithBaseSeed)
{
    BatchJob j;
    j.label = "seeded";
    j.workload = "histogram";
    j.workloadParams = tinyScale();
    j.spec.arch = cpu::highPerformanceConfig();
    j.spec.threads = 8;
    j.sampling = sampling::SamplingParams::lazy();

    BatchOptions s1;
    s1.jobs = 2;
    s1.baseSeed = 1;
    BatchOptions s2 = s1;
    s2.baseSeed = 2;
    const Cycles c1 =
        BatchRunner(s1).run({j})[0].sampled->result.totalCycles;
    const Cycles c2 =
        BatchRunner(s2).run({j})[0].sampled->result.totalCycles;
    EXPECT_NE(c1, c2)
        << "deriveSeeds must reseed workload synthesis per base seed";
}

TEST(BatchRunner, JobExceptionPropagatesToCaller)
{
    BatchJob bad;
    bad.label = "bad";
    bad.workload = "no-such-workload";
    bad.spec.arch = cpu::highPerformanceConfig();
    BatchOptions opts;
    opts.jobs = 2;
    EXPECT_THROW((void)BatchRunner(opts).run({bad}), SimError);
}

TEST(BatchRunner, ColdAndWarmCacheRunsAreIdentical)
{
    // Determinism regression over the result cache: a serial
    // cold-cache run, a parallel cold-cache run and a parallel
    // warm-cache run must produce identical reports except host
    // wall-clock fields.
    namespace fs = std::filesystem;
    const fs::path coldDir =
        fs::path(testing::TempDir()) / "tp_batch_cache_cold";
    const fs::path warmDir =
        fs::path(testing::TempDir()) / "tp_batch_cache_warm";
    fs::remove_all(coldDir);
    fs::remove_all(warmDir);

    const std::vector<BatchJob> jobs = smallBatch();

    ResultCacheOptions co;
    co.dir = coldDir.string();
    ResultCache serialCache(co);
    BatchOptions serial;
    serial.jobs = 1;
    serial.cache = &serialCache;
    const std::vector<BatchResult> a = BatchRunner(serial).run(jobs);

    ResultCacheOptions wo;
    wo.dir = warmDir.string();
    ResultCache parallelCache(wo);
    BatchOptions parallel;
    parallel.jobs = 4;
    parallel.cache = &parallelCache;
    const std::vector<BatchResult> b =
        BatchRunner(parallel).run(jobs); // cold
    const std::vector<BatchResult> c =
        BatchRunner(parallel).run(jobs); // warm, same directory

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    ASSERT_EQ(c.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].label);
        // Every reference was simulated in the cold runs and
        // replayed in the warm one.
        EXPECT_FALSE(a[i].referenceFromCache);
        EXPECT_FALSE(b[i].referenceFromCache);
        EXPECT_TRUE(c[i].referenceFromCache);

        // Deterministic fields agree across all three runs.
        EXPECT_TRUE(fingerprint(*a[i].reference) ==
                    fingerprint(*b[i].reference));
        EXPECT_TRUE(fingerprint(*b[i].reference) ==
                    fingerprint(*c[i].reference));
        EXPECT_TRUE(fingerprint(a[i].sampled->result) ==
                    fingerprint(c[i].sampled->result));
        EXPECT_EQ(a[i].comparison->errorPct, c[i].comparison->errorPct);
        EXPECT_EQ(b[i].comparison->errorPct, c[i].comparison->errorPct);
        EXPECT_EQ(a[i].comparison->detailFraction,
                  c[i].comparison->detailFraction);

        // The warm run replays even the stored host wall-clock of
        // the cold run's reference, bit for bit.
        EXPECT_EQ(std::memcmp(&b[i].reference->wallSeconds,
                              &c[i].reference->wallSeconds,
                              sizeof(double)),
                  0);
    }
    EXPECT_EQ(parallelCache.stats().hits, jobs.size());
    EXPECT_EQ(parallelCache.stats().stores, jobs.size());

    fs::remove_all(coldDir);
    fs::remove_all(warmDir);
}

TEST(BatchRunner, SummaryTableAndErrorStats)
{
    BatchOptions opts;
    opts.jobs = 4;
    const std::vector<BatchResult> results =
        BatchRunner(opts).run(smallBatch());

    const RunningStats err = batchErrorStats(results);
    EXPECT_EQ(err.count(), results.size());
    EXPECT_GE(err.min(), 0.0);

    const std::string rendered =
        batchSummaryTable("t", results).render();
    for (const BatchResult &r : results)
        EXPECT_NE(rendered.find(r.label), std::string::npos);
}

} // namespace
} // namespace tp::harness
