/**
 * @file
 * Tests of the plan-driven experiment runner: ordered streaming
 * delivery to sinks, per-job deterministic seeding, trace
 * memoization across jobs and trace sources, exception propagation,
 * sink composition, and — the contract the whole design rests on —
 * bit-identical reported statistics for any worker count.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <set>

#include "common/binary_io.hh"
#include "common/logging.hh"
#include "harness/batch_runner.hh"
#include "harness/result_cache.hh"
#include "trace/trace_io.hh"

namespace tp::harness {
namespace {

namespace fs = std::filesystem;

work::WorkloadParams
tinyScale()
{
    work::WorkloadParams p;
    p.scale = 0.02; // a handful of tasks per type: fast
    p.seed = 42;
    return p;
}

/** A small mixed plan over two workloads and two policies. */
ExperimentPlan
smallPlan()
{
    ExperimentPlan plan;
    for (const char *name : {"histogram", "vector-operation"}) {
        for (bool lazy : {true, false}) {
            JobSpec j;
            j.label = std::string(name) + (lazy ? " lazy" : " p100");
            j.workload = name;
            j.workloadParams = tinyScale();
            j.spec.arch = cpu::highPerformanceConfig();
            j.spec.threads = 8;
            j.sampling = lazy
                             ? sampling::SamplingParams::lazy()
                             : sampling::SamplingParams::periodic(100);
            j.mode = BatchMode::Both;
            plan.jobs.push_back(j);
        }
    }
    return plan;
}

/** The deterministic (host-timing-free) fields of a SimResult. */
struct Fingerprint
{
    Cycles totalCycles;
    std::uint64_t detailedTasks;
    std::uint64_t fastTasks;
    InstCount detailedInsts;
    InstCount fastInsts;
    std::size_t taskRecords;

    bool
    operator==(const Fingerprint &o) const
    {
        return totalCycles == o.totalCycles &&
               detailedTasks == o.detailedTasks &&
               fastTasks == o.fastTasks &&
               detailedInsts == o.detailedInsts &&
               fastInsts == o.fastInsts &&
               taskRecords == o.taskRecords;
    }
};

Fingerprint
fingerprint(const sim::SimResult &r)
{
    return Fingerprint{r.totalCycles, r.detailedTasks, r.fastTasks,
                       r.detailedInsts, r.fastInsts, r.tasks.size()};
}

TEST(BatchRunner, JobSeedIsDeterministicAndIndexSensitive)
{
    EXPECT_EQ(BatchRunner::jobSeed(42, 0), BatchRunner::jobSeed(42, 0));
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 64; ++i)
        seeds.insert(BatchRunner::jobSeed(42, i));
    EXPECT_EQ(seeds.size(), 64u) << "per-index seeds must not collide";
    EXPECT_NE(BatchRunner::jobSeed(1, 0), BatchRunner::jobSeed(2, 0));
}

TEST(BatchRunner, ResultsArriveInSubmissionOrder)
{
    BatchOptions opts;
    opts.jobs = 4;
    const ExperimentPlan plan = smallPlan();
    const std::vector<BatchResult> results =
        BatchRunner(opts).run(plan);
    ASSERT_EQ(results.size(), plan.jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].label, plan.jobs[i].label);
        ASSERT_TRUE(results[i].sampled.has_value());
        ASSERT_TRUE(results[i].reference.has_value());
        ASSERT_TRUE(results[i].comparison.has_value());
    }
}

TEST(BatchRunner, SinkSeesOrderedStreamWithBeginAndEnd)
{
    /** Records the call protocol run() promises to sinks. */
    class ProtocolSink final : public ResultSink
    {
      public:
        void
        begin(std::size_t totalJobs) override
        {
            ++begins;
            announced = totalJobs;
        }
        void
        consume(BatchResult &&r) override
        {
            indices.push_back(r.index);
        }
        void end() override { ++ends; }

        int begins = 0;
        int ends = 0;
        std::size_t announced = 0;
        std::vector<std::size_t> indices;
    };

    const ExperimentPlan plan = smallPlan();
    BatchOptions opts;
    opts.jobs = 4;
    ProtocolSink sink;
    BatchRunner(opts).run(plan, sink);

    EXPECT_EQ(sink.begins, 1);
    EXPECT_EQ(sink.ends, 1);
    EXPECT_EQ(sink.announced, plan.jobs.size());
    ASSERT_EQ(sink.indices.size(), plan.jobs.size());
    for (std::size_t i = 0; i < sink.indices.size(); ++i)
        EXPECT_EQ(sink.indices[i], i)
            << "delivery must follow submission order";
}

TEST(BatchRunner, EightJobsBitIdenticalToOneJob)
{
    // The acceptance test of the parallel runner: everything reported
    // except host wall-clock must be bit-identical between a serial
    // and a heavily oversubscribed parallel run.
    const ExperimentPlan plan = smallPlan();

    BatchOptions serial;
    serial.jobs = 1;
    const std::vector<BatchResult> a = BatchRunner(serial).run(plan);

    BatchOptions parallel;
    parallel.jobs = 8;
    const std::vector<BatchResult> b =
        BatchRunner(parallel).run(plan);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].label);
        EXPECT_TRUE(fingerprint(a[i].sampled->result) ==
                    fingerprint(b[i].sampled->result));
        EXPECT_TRUE(fingerprint(*a[i].reference) ==
                    fingerprint(*b[i].reference));
        // Error is a pure function of the two cycle counts.
        EXPECT_EQ(a[i].comparison->errorPct, b[i].comparison->errorPct);
        EXPECT_EQ(a[i].comparison->detailFraction,
                  b[i].comparison->detailFraction);
        // Sampling statistics, phase for phase.
        const sampling::SamplingStats &sa = a[i].sampled->stats;
        const sampling::SamplingStats &sb = b[i].sampled->stats;
        EXPECT_EQ(sa.warmupTasks, sb.warmupTasks);
        EXPECT_EQ(sa.sampleTasks, sb.sampleTasks);
        EXPECT_EQ(sa.fastTasks, sb.fastTasks);
        EXPECT_EQ(sa.resamples, sb.resamples);
        EXPECT_EQ(sa.phaseChanges, sb.phaseChanges);
    }
}

TEST(BatchRunner, TraceFileJobMatchesWorkloadJob)
{
    // A job naming a trace file must equal a job generating the same
    // trace from the registry (same workload, same seed).
    const trace::TaskTrace shared =
        work::generateWorkload("histogram", tinyScale());
    const fs::path file =
        fs::path(testing::TempDir()) / "tp_batch_runner_shared.trace";
    trace::serializeTrace(shared, file.string());

    ExperimentPlan plan;
    plan.deriveSeeds = false; // keep the workloadParams seed
    JobSpec generating;
    generating.label = "own";
    generating.workload = "histogram";
    generating.workloadParams = tinyScale();
    generating.spec.arch = cpu::highPerformanceConfig();
    generating.spec.threads = 8;
    generating.sampling = sampling::SamplingParams::lazy();
    plan.jobs.push_back(generating);

    JobSpec fromFile = generating;
    fromFile.label = "from file";
    fromFile.workload.clear();
    fromFile.traceFile = file.string();
    plan.jobs.push_back(fromFile);

    BatchOptions opts;
    opts.jobs = 2;
    const std::vector<BatchResult> results =
        BatchRunner(opts).run(plan);
    EXPECT_TRUE(fingerprint(results[0].sampled->result) ==
                fingerprint(results[1].sampled->result));
    fs::remove(file);
}

TEST(BatchRunner, ResolveTraceMemoizesPerSource)
{
    JobSpec j;
    j.label = "memo";
    j.workload = "histogram";
    j.workloadParams = tinyScale();

    const BatchRunner runner;
    const std::shared_ptr<const trace::TaskTrace> a =
        runner.resolveTrace(j);
    const std::shared_ptr<const trace::TaskTrace> b =
        runner.resolveTrace(j);
    EXPECT_EQ(a.get(), b.get())
        << "identical sources must share one realized trace";
    EXPECT_EQ(a->size(),
              work::generateWorkload("histogram", tinyScale()).size());

    JobSpec other = j;
    other.workloadParams.seed = 43;
    EXPECT_NE(runner.resolveTrace(other).get(), a.get())
        << "a different seed is a different source";
}

TEST(BatchRunner, DerivedSeedsChangeWithBaseSeed)
{
    JobSpec j;
    j.label = "seeded";
    j.workload = "histogram";
    j.workloadParams = tinyScale();
    j.spec.arch = cpu::highPerformanceConfig();
    j.spec.threads = 8;
    j.sampling = sampling::SamplingParams::lazy();

    ExperimentPlan p1;
    p1.jobs = {j};
    p1.baseSeed = 1;
    ExperimentPlan p2 = p1;
    p2.baseSeed = 2;
    BatchOptions opts;
    opts.jobs = 2;
    const BatchRunner runner(opts);
    const Cycles c1 = runner.run(p1)[0].sampled->result.totalCycles;
    const Cycles c2 = runner.run(p2)[0].sampled->result.totalCycles;
    EXPECT_NE(c1, c2)
        << "deriveSeeds must reseed workload synthesis per base seed";
}

TEST(BatchRunner, MalformedJobsFailFast)
{
    BatchOptions opts;
    opts.jobs = 2;

    JobSpec bad;
    bad.label = "bad";
    bad.workload = "no-such-workload";
    bad.spec.arch = cpu::highPerformanceConfig();
    ExperimentPlan plan;
    plan.jobs = {bad};
    EXPECT_THROW((void)BatchRunner(opts).run(plan), SimError);

    JobSpec none;
    none.label = "no source";
    plan.jobs = {none};
    EXPECT_THROW((void)BatchRunner(opts).run(plan), SimError);

    JobSpec both;
    both.label = "two sources";
    both.workload = "histogram";
    both.traceFile = "whatever.trace";
    plan.jobs = {both};
    EXPECT_THROW((void)BatchRunner(opts).run(plan), SimError);
}

TEST(BatchRunner, MissingTraceFileRaisesRecoverableIoError)
{
    JobSpec j;
    j.label = "gone";
    j.traceFile = "/nonexistent/tp_no_such.trace";
    ExperimentPlan plan;
    plan.jobs = {j};
    BatchOptions opts;
    opts.jobs = 2;
    EXPECT_THROW((void)BatchRunner(opts).run(plan), IoError);
}

TEST(BatchRunner, ColdAndWarmCacheRunsAreIdentical)
{
    // Determinism regression over the result cache: a serial
    // cold-cache run, a parallel cold-cache run and a parallel
    // warm-cache run must produce identical reports except host
    // wall-clock fields — for the references and, since sampled
    // outcomes are cached too, for the sampled runs.
    const fs::path coldDir =
        fs::path(testing::TempDir()) / "tp_batch_cache_cold";
    const fs::path warmDir =
        fs::path(testing::TempDir()) / "tp_batch_cache_warm";
    fs::remove_all(coldDir);
    fs::remove_all(warmDir);

    const ExperimentPlan plan = smallPlan();

    ResultCacheOptions co;
    co.dir = coldDir.string();
    ResultCache serialCache(co);
    BatchOptions serial;
    serial.jobs = 1;
    serial.cache = &serialCache;
    const std::vector<BatchResult> a = BatchRunner(serial).run(plan);

    ResultCacheOptions wo;
    wo.dir = warmDir.string();
    ResultCache parallelCache(wo);
    BatchOptions parallel;
    parallel.jobs = 4;
    parallel.cache = &parallelCache;
    const std::vector<BatchResult> b =
        BatchRunner(parallel).run(plan); // cold
    const std::vector<BatchResult> c =
        BatchRunner(parallel).run(plan); // warm, same directory

    ASSERT_EQ(a.size(), plan.jobs.size());
    ASSERT_EQ(b.size(), plan.jobs.size());
    ASSERT_EQ(c.size(), plan.jobs.size());
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        SCOPED_TRACE(plan.jobs[i].label);
        // Everything was simulated in the cold runs and replayed in
        // the warm one.
        EXPECT_FALSE(a[i].referenceFromCache);
        EXPECT_FALSE(a[i].sampledFromCache);
        EXPECT_FALSE(b[i].referenceFromCache);
        EXPECT_FALSE(b[i].sampledFromCache);
        EXPECT_TRUE(c[i].referenceFromCache);
        EXPECT_TRUE(c[i].sampledFromCache);

        // Deterministic fields agree across all three runs.
        EXPECT_TRUE(fingerprint(*a[i].reference) ==
                    fingerprint(*b[i].reference));
        EXPECT_TRUE(fingerprint(*b[i].reference) ==
                    fingerprint(*c[i].reference));
        EXPECT_TRUE(fingerprint(a[i].sampled->result) ==
                    fingerprint(c[i].sampled->result));
        EXPECT_EQ(a[i].comparison->errorPct, c[i].comparison->errorPct);
        EXPECT_EQ(b[i].comparison->errorPct, c[i].comparison->errorPct);
        EXPECT_EQ(a[i].comparison->detailFraction,
                  c[i].comparison->detailFraction);

        // The warm run replays even the stored host wall-clock of
        // the cold run, bit for bit — reference and sampled alike.
        EXPECT_EQ(std::memcmp(&b[i].reference->wallSeconds,
                              &c[i].reference->wallSeconds,
                              sizeof(double)),
                  0);
        EXPECT_EQ(std::memcmp(&b[i].sampled->result.wallSeconds,
                              &c[i].sampled->result.wallSeconds,
                              sizeof(double)),
                  0);
    }
    // One reference and one sampled entry per job.
    EXPECT_EQ(parallelCache.stats().hits, 2 * plan.jobs.size());
    EXPECT_EQ(parallelCache.stats().stores, 2 * plan.jobs.size());

    fs::remove_all(coldDir);
    fs::remove_all(warmDir);
}

TEST(BatchRunner, TeeAndStatsSinksComposeOverOnePass)
{
    const ExperimentPlan plan = smallPlan();
    BatchOptions opts;
    opts.jobs = 4;

    CollectingSink first, second;
    StatsSink stats;
    TeeSink tee({&first, &stats, &second});
    BatchRunner(opts).run(plan, tee);

    ASSERT_EQ(first.results().size(), plan.jobs.size());
    ASSERT_EQ(second.results().size(), plan.jobs.size());
    EXPECT_EQ(stats.jobs(), plan.jobs.size());
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        EXPECT_EQ(first.results()[i].label,
                  second.results()[i].label);
        EXPECT_TRUE(fingerprint(first.results()[i].sampled->result) ==
                    fingerprint(second.results()[i].sampled->result));
    }

    // The streaming stats equal the collected-vector helper.
    const RunningStats collected =
        batchErrorStats(first.results());
    EXPECT_EQ(stats.errorStats().count(), collected.count());
    EXPECT_EQ(stats.errorStats().mean(), collected.mean());
    EXPECT_EQ(stats.errorStats().max(), collected.max());
}

TEST(BatchRunner, SummaryTableAndErrorStats)
{
    BatchOptions opts;
    opts.jobs = 4;
    const ExperimentPlan plan = smallPlan();

    // Streamed table rows must equal the collected-vector helper.
    TableSink streamed("t", /*printAtEnd=*/false);
    CollectingSink collected;
    TeeSink tee({&streamed, &collected});
    BatchRunner(opts).run(plan, tee);

    const RunningStats err = batchErrorStats(collected.results());
    EXPECT_EQ(err.count(), plan.jobs.size());
    EXPECT_GE(err.min(), 0.0);

    const std::string rendered =
        batchSummaryTable("t", collected.results()).render();
    EXPECT_EQ(rendered, streamed.table().render());
    for (const BatchResult &r : collected.results())
        EXPECT_NE(rendered.find(r.label), std::string::npos);
}

} // namespace
} // namespace tp::harness
