/**
 * @file
 * Tests of the machine-readable result sinks: exact CSV/JSON text
 * for synthetic results, RFC-4180 and JSON escaping of hostile
 * labels, null/empty handling of absent optionals, and the
 * stability property the worker smoke diff relies on — identical
 * results render identical bytes, with host-timing columns last.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/result_sink.hh"

namespace tp::harness {
namespace {

/** A fully populated Both-mode result with deterministic fields. */
BatchResult
bothResult()
{
    BatchResult r;
    r.index = 3;
    r.label = "histogram @8t";
    SampledOutcome so;
    so.result.totalCycles = 12345;
    so.result.detailedInsts = 250;
    so.result.fastInsts = 750;
    r.sampled = so;
    sim::SimResult ref;
    ref.totalCycles = 12000;
    r.reference = ref;
    ErrorSpeedup es;
    es.errorPct = 2.875;
    es.wallSpeedup = 4.5;
    es.detailFraction = 0.25;
    r.comparison = es;
    r.referenceFromCache = true;
    r.hostSeconds = 1.5;
    return r;
}

/** A sampled-only result. */
BatchResult
sampledResult()
{
    BatchResult r;
    r.index = 0;
    r.label = "plain";
    SampledOutcome so;
    so.result.totalCycles = 777;
    so.result.detailedInsts = 1;
    so.result.fastInsts = 0;
    r.sampled = so;
    r.hostSeconds = 0.5;
    return r;
}

std::string
renderCsv(const std::vector<BatchResult> &results)
{
    std::ostringstream out;
    CsvSink sink(out);
    sink.begin(results.size());
    for (BatchResult r : results)
        sink.consume(std::move(r));
    sink.end();
    return out.str();
}

std::string
renderJson(const std::vector<BatchResult> &results)
{
    std::ostringstream out;
    JsonSink sink(out);
    sink.begin(results.size());
    for (BatchResult r : results)
        sink.consume(std::move(r));
    sink.end();
    return out.str();
}

TEST(CsvSink, RendersExactRows)
{
    const std::string csv = renderCsv({sampledResult(), bothResult()});
    EXPECT_EQ(csv,
              "index,label,sampled_cycles,reference_cycles,"
              "error_pct,detail_fraction,ref_cached,sam_cached,"
              "wall_speedup,host_seconds\n"
              "0,plain,777,,,1,0,0,,0.5\n"
              "3,histogram @8t,12345,12000,2.875,0.25,1,0,4.5,1.5\n");
}

TEST(CsvSink, TimingColumnsComeLastForStripping)
{
    // The worker smoke strips nondeterministic columns with
    // `cut -d, -f1-8`; everything left of wall_speedup must be
    // deterministic, so the header order is load-bearing.
    const std::string csv = renderCsv({bothResult()});
    const std::string header = csv.substr(0, csv.find('\n'));
    EXPECT_EQ(header.find("wall_speedup,host_seconds"),
              header.size() -
                  std::string("wall_speedup,host_seconds").size());
}

TEST(CsvSink, QuotesHostileLabels)
{
    BatchResult r = sampledResult();
    r.label = "a,b \"c\"\nd";
    const std::string csv = renderCsv({r});
    EXPECT_NE(csv.find("\"a,b \"\"c\"\"\nd\""), std::string::npos)
        << csv;
}

TEST(CsvSink, ReferenceOnlyRowUsesReferenceDetailFraction)
{
    BatchResult r;
    r.index = 1;
    r.label = "ref";
    sim::SimResult ref;
    ref.totalCycles = 99;
    ref.detailedInsts = 10;
    ref.fastInsts = 0;
    r.reference = ref;
    r.hostSeconds = 0.25;
    const std::string csv = renderCsv({r});
    EXPECT_NE(csv.find("1,ref,,99,,1,0,0,,0.25"),
              std::string::npos)
        << csv;
}

TEST(JsonSink, RendersValidArrayWithNulls)
{
    const std::string json =
        renderJson({sampledResult(), bothResult()});
    EXPECT_EQ(json,
              "[\n"
              "  {\"index\": 0, \"label\": \"plain\", "
              "\"sampled_cycles\": 777, \"reference_cycles\": null, "
              "\"error_pct\": null, \"detail_fraction\": 1, "
              "\"ref_cached\": false, \"sam_cached\": false, "
              "\"wall_speedup\": null, \"host_seconds\": 0.5},\n"
              "  {\"index\": 3, \"label\": \"histogram @8t\", "
              "\"sampled_cycles\": 12345, "
              "\"reference_cycles\": 12000, "
              "\"error_pct\": 2.875, \"detail_fraction\": 0.25, "
              "\"ref_cached\": true, \"sam_cached\": false, "
              "\"wall_speedup\": 4.5, \"host_seconds\": 1.5}\n"
              "]\n");
}

TEST(JsonSink, EscapesHostileLabels)
{
    BatchResult r = sampledResult();
    r.label = "quote \" slash \\ tab\t nl\n ctl\x01";
    const std::string json = renderJson({r});
    EXPECT_NE(json.find("\"quote \\\" slash \\\\ tab\\t nl\\n "
                        "ctl\\u0001\""),
              std::string::npos)
        << json;
}

TEST(JsonSink, EmptyBatchIsAnEmptyArray)
{
    EXPECT_EQ(renderJson({}), "[\n]\n");
}

TEST(Sinks, IdenticalResultsRenderIdenticalBytes)
{
    // The property multi-process diffing rests on: rendering is a
    // pure function of the results.
    const std::vector<BatchResult> batch = {sampledResult(),
                                            bothResult()};
    EXPECT_EQ(renderCsv(batch), renderCsv(batch));
    EXPECT_EQ(renderJson(batch), renderJson(batch));
}

} // namespace
} // namespace tp::harness
