/**
 * @file
 * Tests of the multi-process result transport and coordinator: the
 * checksummed result envelope rejects truncated and bit-flipped
 * bytes with recoverable IoError, BatchResults round-trip
 * bit-identically through the wire format, and ProcessPool delivers
 * the same ordered result stream as in-process execution — including
 * with a worker killed mid-shard and with a worker binary that can
 * never succeed.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/binary_io.hh"
#include "common/cli.hh"
#include "corruption_battery.hh"
#include "harness/batch_runner.hh"
#include "harness/process_pool.hh"
#include "harness/worker.hh"
#include "sim/result_io.hh"

namespace tp::harness {
namespace {

namespace fs = std::filesystem;

work::WorkloadParams
tinyScale()
{
    work::WorkloadParams p;
    p.scale = 0.02;
    p.seed = 42;
    return p;
}

ExperimentPlan
smallPlan(std::size_t n = 5)
{
    ExperimentPlan plan;
    plan.baseSeed = 11;
    for (std::size_t i = 0; i < n; ++i) {
        JobSpec j;
        j.label = "job " + std::to_string(i);
        j.workload = i % 2 == 0 ? "histogram" : "vector-operation";
        j.workloadParams = tinyScale();
        j.spec.arch = cpu::highPerformanceConfig();
        j.spec.threads = 8;
        j.sampling = sampling::SamplingParams::periodic(100);
        j.mode = i % 3 == 0 ? BatchMode::Both : BatchMode::Sampled;
        plan.jobs.push_back(j);
    }
    return plan;
}

std::string
resultBytes(const BatchResult &r)
{
    std::ostringstream out(std::ios::binary);
    serializeBatchResult(r, out);
    return out.str();
}

TEST(ResultEnvelope, RoundTripsArbitraryPayloads)
{
    for (const std::string &payload :
         {std::string(), std::string("x"),
          std::string(100000, '\xab'),
          std::string("binary\0bytes\xff", 13)}) {
        std::ostringstream out(std::ios::binary);
        sim::writeEnvelope(out, payload);
        std::istringstream in(out.str(), std::ios::binary);
        EXPECT_EQ(sim::readEnvelope(in, "mem"), payload);
    }
}

TEST(ResultEnvelope, TruncationRaisesRecoverableIoError)
{
    std::ostringstream out(std::ios::binary);
    sim::writeEnvelope(out, "the payload under test");
    test::expectTruncationsThrow<IoError>(
        out.str(), [](const std::string &bad) {
            std::istringstream in(bad, std::ios::binary);
            (void)sim::readEnvelope(in, "trunc");
        });
}

TEST(ResultEnvelope, BitFlipsAnywhereRaiseIoError)
{
    std::ostringstream out(std::ios::binary);
    sim::writeEnvelope(out, "checksummed payload bytes here");
    test::expectBitFlipsThrow<IoError>(
        out.str(), [](const std::string &bad) {
            std::istringstream in(bad, std::ios::binary);
            (void)sim::readEnvelope(in, "flip");
        });
}

TEST(ResultEnvelope, TrailingBytesRaiseIoError)
{
    std::ostringstream out(std::ios::binary);
    sim::writeEnvelope(out, "payload");
    std::istringstream in(out.str() + "x", std::ios::binary);
    EXPECT_THROW((void)sim::readEnvelope(in, "trail"), IoError);
}

TEST(WorkerTransport, BatchResultRoundTripsBitIdentically)
{
    // Real results with every optional populated/absent combination.
    ExperimentPlan plan = smallPlan(3);
    plan.jobs[1].mode = BatchMode::Reference;
    const std::vector<BatchResult> results =
        BatchRunner(BatchOptions{}).run(plan);
    for (const BatchResult &r : results) {
        SCOPED_TRACE(r.label);
        const std::string bytes = resultBytes(r);
        std::istringstream in(bytes, std::ios::binary);
        const BatchResult back = deserializeBatchResult(in, "mem");
        EXPECT_EQ(back.index, r.index);
        EXPECT_EQ(back.label, r.label);
        EXPECT_EQ(back.sampled.has_value(), r.sampled.has_value());
        EXPECT_EQ(back.reference.has_value(),
                  r.reference.has_value());
        EXPECT_EQ(back.comparison.has_value(),
                  r.comparison.has_value());
        EXPECT_EQ(resultBytes(back), bytes)
            << "serialize(deserialize(x)) must equal x";
    }

    // Corrupt result payloads are recoverable errors, not crashes.
    const std::string good = resultBytes(results[0]);
    std::istringstream in(good.substr(0, good.size() / 2),
                          std::ios::binary);
    EXPECT_THROW((void)deserializeBatchResult(in, "trunc"),
                 IoError);
}

/**
 * ProcessPool against the real taskpoint_worker binary (resolved
 * next to this test binary; both live in the build directory).
 */
class ProcessPoolE2E : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!fs::exists(defaultWorkerBinary()))
            GTEST_SKIP()
                << "taskpoint_worker not found next to the test "
                   "binary (" << defaultWorkerBinary() << ")";
    }
};

TEST_F(ProcessPoolE2E, MatchesInProcessExecutionOrderedAndExact)
{
    const ExperimentPlan plan = smallPlan();
    const std::vector<BatchResult> reference =
        BatchRunner(BatchOptions{}).run(plan);

    ProcessPoolOptions po;
    po.workers = 3;
    CollectingSink sink;
    ProcessPool(po).run(plan, sink);
    const std::vector<BatchResult> &results = sink.results();

    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE(reference[i].label);
        EXPECT_EQ(results[i].index, i)
            << "pool must deliver in submission order";
        EXPECT_EQ(results[i].label, reference[i].label);
        ASSERT_EQ(results[i].sampled.has_value(),
                  reference[i].sampled.has_value());
        if (results[i].sampled) {
            EXPECT_EQ(results[i].sampled->result.totalCycles,
                      reference[i].sampled->result.totalCycles);
        }
        ASSERT_EQ(results[i].reference.has_value(),
                  reference[i].reference.has_value());
        if (results[i].reference) {
            EXPECT_EQ(results[i].reference->totalCycles,
                      reference[i].reference->totalCycles);
        }
        if (results[i].comparison) {
            EXPECT_EQ(results[i].comparison->errorPct,
                      reference[i].comparison->errorPct);
        }
    }
}

TEST_F(ProcessPoolE2E, EmptyPlanCompletesWithoutWorkers)
{
    ProcessPoolOptions po;
    po.workers = 4;
    CollectingSink sink;
    ProcessPool(po).run(ExperimentPlan{}, sink);
    EXPECT_TRUE(sink.results().empty());
}

TEST_F(ProcessPoolE2E, SurvivesWorkerKilledMidShard)
{
    // The kill-once hook makes exactly one worker SIGKILL itself
    // after its first publish; the pool must retry that shard and
    // still deliver the full, identical, ordered result set.
    const fs::path marker =
        fs::path(testing::TempDir()) / "tp_pool_kill_once";
    fs::remove(marker);
    ASSERT_EQ(setenv(kKillOnceEnvVar, marker.c_str(), 1), 0);

    const ExperimentPlan plan = smallPlan(6);
    ProcessPoolOptions po;
    po.workers = 2; // 3 jobs per shard: death leaves work undone
    CollectingSink sink;
    ProcessPool(po).run(plan, sink);

    unsetenv(kKillOnceEnvVar);
    EXPECT_TRUE(fs::exists(marker))
        << "the kill hook must actually have fired";
    fs::remove(marker);

    const std::vector<BatchResult> reference =
        BatchRunner(BatchOptions{}).run(plan);
    ASSERT_EQ(sink.results().size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(sink.results()[i].index, i);
        EXPECT_EQ(sink.results()[i].sampled->result.totalCycles,
                  reference[i].sampled->result.totalCycles);
    }
}

TEST_F(ProcessPoolE2E, HopelessWorkerBinaryFailsAfterMaxAttempts)
{
    ProcessPoolOptions po;
    po.workers = 1;
    po.maxAttempts = 2;
    po.workerBinary = "/bin/false";
    CollectingSink sink;
    EXPECT_THROW(ProcessPool(po).run(smallPlan(2), sink), SimError);
}

TEST(ProcessPoolCli, BuildsOptionsFromFlags)
{
    const char *argv[] = {"prog", "--workers=3", "--jobs=2",
                          "--cache-dir=/tmp/c", "--cache=ro"};
    const CliArgs args(5, argv,
                       {workersCliOption(), workerBinCliOption(),
                        jobsCliOption(), cacheDirCliOption(),
                        cacheModeCliOption()});
    const ProcessPoolOptions po = processPoolFromCli(args);
    EXPECT_EQ(po.workers, 3u);
    EXPECT_EQ(po.jobsPerWorker, 2u);
    EXPECT_EQ(po.cacheDir, "/tmp/c");
    EXPECT_EQ(po.cacheMode, "ro");

    const char *off[] = {"prog", "--workers=0"};
    const CliArgs offArgs(2, off,
                          {workersCliOption(), workerBinCliOption(),
                           jobsCliOption(), cacheDirCliOption(),
                           cacheModeCliOption()});
    EXPECT_EQ(processPoolFromCli(offArgs).workers, 0u)
        << "--workers=0 must mean in-process";
}

} // namespace
} // namespace tp::harness
