/**
 * @file
 * Unit tests for the memory hierarchy: cache geometry, LRU and
 * invalidation behaviour, prepollution/aging, service ports, DRAM,
 * coherence and the prefetcher.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cpu/arch_config.hh"
#include "memory/cache.hh"
#include "memory/dram.hh"
#include "memory/hierarchy.hh"

namespace tp::mem {
namespace {

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 64B lines = 512 B.
    return CacheConfig{512, 2, 64, 3, 0};
}

TEST(Cache, HitAfterFill)
{
    Cache c("t", smallCache());
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13f, false).hit); // same line
    EXPECT_FALSE(c.access(0x140, false).hit); // next line
}

TEST(Cache, LruEvictionOrder)
{
    Cache c("t", smallCache());
    // Three lines mapping to the same set (set stride = 4*64 = 256).
    c.access(0x0, false);
    c.access(0x100, false);
    c.access(0x0, false);        // touch A again: B is LRU
    c.access(0x200, false);      // evicts B
    EXPECT_TRUE(c.access(0x0, false).hit);
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_TRUE(c.contains(0x200));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache c("t", smallCache());
    c.access(0x0, true); // dirty
    c.access(0x100, false);
    const auto out = c.access(0x200, false); // evicts dirty 0x0
    EXPECT_TRUE(out.writebackVictim);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c("t", smallCache());
    c.access(0x40, true);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.invalidate(0x40)); // second time: nothing there
    EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(Cache, StatsCount)
{
    Cache c("t", smallCache());
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_NEAR(c.stats().hitRate(), 1.0 / 3.0, 1e-12);
}

TEST(Cache, OccupancyTracksFills)
{
    Cache c("t", smallCache());
    EXPECT_DOUBLE_EQ(c.occupancy(), 0.0);
    c.access(0x0, false);
    EXPECT_DOUBLE_EQ(c.occupancy(), 1.0 / 8.0);
    c.reset();
    EXPECT_DOUBLE_EQ(c.occupancy(), 0.0);
}

TEST(Cache, PrepolluteFillsEverythingWithoutHits)
{
    Cache c("t", smallCache());
    c.prepollute();
    EXPECT_DOUBLE_EQ(c.occupancy(), 1.0);
    // Junk lines never hit; real accesses still miss and allocate.
    EXPECT_FALSE(c.access(0x0, false).hit);
    EXPECT_TRUE(c.access(0x0, false).hit);
}

TEST(Cache, PrepolluteVictimsEvictBeforeRealLines)
{
    Cache c("t", smallCache());
    c.prepollute();
    c.access(0x0, false); // evicts junk, not...
    c.access(0x100, false);
    // Both real lines must coexist (2 ways): junk got evicted.
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_TRUE(c.contains(0x100));
}

TEST(Cache, AgeLinesDisplacesLru)
{
    Cache c("t", smallCache());
    c.access(0x0, false);
    c.access(0x40, false);
    c.ageLines(8); // full capacity of junk at MRU
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, AgeLinesPartialKeepsMru)
{
    Cache c("t", CacheConfig{512, 2, 64, 3, 0});
    // Fill set 0 with two lines; age only one line into set 0.
    c.access(0x0, false);   // set 0
    c.access(0x100, false); // set 0
    c.access(0x0, false);   // A is MRU
    c.ageLines(1);          // one junk line into set 0: evicts B
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, ScanResistantInsertEvictsStreamsFirst)
{
    CacheConfig cfg = smallCache();
    cfg.scanResistantInsert = true;
    Cache c("t", cfg);
    c.access(0x0, false);
    c.access(0x0, false); // promote A to MRU
    c.access(0x100, false); // stream line, inserted at LRU
    c.access(0x200, false); // evicts the stream line, not A
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache("t", CacheConfig{500, 2, 64, 3, 0}), SimError);
    EXPECT_THROW(Cache("t", CacheConfig{512, 2, 60, 3, 0}), SimError);
    EXPECT_THROW(Cache("t", CacheConfig{512, 0, 64, 3, 0}), SimError);
}

TEST(ServicePort, NoContentionWhenIdle)
{
    ServicePort p(4);
    EXPECT_EQ(p.request(100), 0u);
    EXPECT_EQ(p.request(104), 0u);
}

TEST(ServicePort, QueuesBackToBackRequests)
{
    ServicePort p(4);
    EXPECT_EQ(p.request(100), 0u); // busy until 104
    EXPECT_EQ(p.request(100), 4u); // waits 4
    EXPECT_EQ(p.request(100), 8u); // waits 8
    EXPECT_EQ(p.totalQueueCycles(), 12u);
    EXPECT_EQ(p.requests(), 3u);
}

TEST(ServicePort, ZeroPeriodMeansInfiniteBandwidth)
{
    ServicePort p(0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(p.request(5), 0u);
    EXPECT_EQ(p.requests(), 0u); // not even counted
}

TEST(Dram, LatencyIncludesQueueing)
{
    Dram d(DramConfig{100, 8, 1});
    EXPECT_EQ(d.access(0, 0), 100u);
    EXPECT_EQ(d.access(0, 0), 108u);
}

TEST(Dram, ChannelsInterleaveByLine)
{
    Dram d(DramConfig{100, 8, 2});
    // Consecutive lines hit different channels: no queueing.
    EXPECT_EQ(d.access(0, 0), 100u);
    EXPECT_EQ(d.access(64, 0), 100u);
    EXPECT_EQ(d.access(128, 0), 108u); // back on channel 0
}

TEST(Dram, RejectsZeroChannels)
{
    EXPECT_THROW(Dram(DramConfig{100, 8, 0}), SimError);
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : config_(cpu::highPerformanceConfig().memory),
          h_(config_, 4)
    {
    }

    MemoryConfig config_;
    Hierarchy h_;
};

TEST_F(HierarchyTest, L1HitIsFast)
{
    h_.access(0, 0x1000, false, 0);
    const AccessResult r = h_.access(0, 0x1000, false, 10);
    EXPECT_EQ(static_cast<int>(r.level),
              static_cast<int>(HitLevel::L1));
    EXPECT_EQ(r.latency, config_.l1.latency);
}

TEST_F(HierarchyTest, ColdMissGoesToDram)
{
    // Use an address no prefetcher could have predicted.
    const AccessResult r = h_.access(0, 0x9990040, false, 0);
    EXPECT_EQ(static_cast<int>(r.level),
              static_cast<int>(HitLevel::Mem));
    EXPECT_GE(r.latency, config_.dram.latency);
}

TEST_F(HierarchyTest, RemoteCoreMissesOwnL1)
{
    const Addr shared = config_.coherentBase + 0x40;
    h_.access(0, shared, false, 0);
    const AccessResult r = h_.access(1, shared, false, 100);
    EXPECT_NE(static_cast<int>(r.level),
              static_cast<int>(HitLevel::L1));
}

TEST_F(HierarchyTest, StoreInvalidatesRemoteCopies)
{
    const Addr shared = config_.coherentBase + 0x80;
    h_.access(0, shared, false, 0);
    h_.access(1, shared, false, 10);
    // Core 1 writes: core 0's copy must be invalidated.
    h_.access(1, shared, true, 20);
    const AccessResult r = h_.access(0, shared, false, 30);
    EXPECT_NE(static_cast<int>(r.level),
              static_cast<int>(HitLevel::L1));
    EXPECT_GE(h_.stats().coherenceInvalidations, 1u);
}

TEST_F(HierarchyTest, PrivateAddressesNotCoherenceTracked)
{
    const Addr priv = 0x5000; // below coherentBase
    h_.access(0, priv, false, 0);
    h_.access(1, priv, true, 10);
    // Core 0 still hits its own L1: no invalidation for private data.
    const AccessResult r = h_.access(0, priv, false, 20);
    EXPECT_EQ(static_cast<int>(r.level),
              static_cast<int>(HitLevel::L1));
    EXPECT_EQ(h_.stats().coherenceInvalidations, 0u);
}

TEST_F(HierarchyTest, UpgradeAddsLatency)
{
    const Addr shared = config_.coherentBase + 0xc0;
    h_.access(0, shared, false, 0);
    h_.access(1, shared, false, 10);
    const AccessResult hit_only = h_.access(1, shared, false, 20);
    const AccessResult upgrade = h_.access(1, shared, true, 30);
    EXPECT_GE(upgrade.latency,
              hit_only.latency + config_.upgradeLatency);
}

TEST_F(HierarchyTest, StreamPrefetcherCatchesStrides)
{
    // Two misses establish the stride; the third confirms it and
    // prefetches ahead, so the fourth access hits in L1.
    const Addr base = 0x400000;
    h_.access(0, base, false, 0);
    h_.access(0, base + 64, false, 100);
    h_.access(0, base + 128, false, 200);
    const AccessResult r = h_.access(0, base + 192, false, 300);
    EXPECT_EQ(static_cast<int>(r.level),
              static_cast<int>(HitLevel::L1));
    EXPECT_GT(h_.stats().l1.prefetchFills, 0u);
}

TEST_F(HierarchyTest, SharedBandwidthCreatesContention)
{
    // Saturate the L3 port from many cores at the same instant; the
    // aggregate latency must exceed the no-contention sum.
    Cycles no_contention = 0;
    {
        Hierarchy solo(config_, 4);
        no_contention =
            solo.access(0, 0x8880000, false, 0).latency;
    }
    Cycles total = 0;
    for (ThreadId c = 0; c < 4; ++c)
        total += h_.access(c, 0x8880000 + c * 4096, false, 0).latency;
    EXPECT_GT(total, 4 * config_.l1.latency + no_contention);
}

TEST_F(HierarchyTest, ResetRestoresPrepollutedColdState)
{
    h_.access(0, 0x2000, false, 0);
    h_.reset();
    const AccessResult r = h_.access(0, 0x2000, false, 0);
    EXPECT_NE(static_cast<int>(r.level),
              static_cast<int>(HitLevel::L1));
    EXPECT_NEAR(h_.l1Occupancy(), 1.0, 0.01); // prepolluted
}

TEST_F(HierarchyTest, AgingEvictsFrozenWarmState)
{
    const Addr a = 0x3000;
    h_.access(0, a, false, 0);
    EXPECT_TRUE(h_.access(0, a, false, 10).level == HitLevel::L1);
    // Age far more than every cache's capacity.
    h_.applyFastForwardAging(1ULL << 30);
    const AccessResult r = h_.access(0, a, false, 20);
    EXPECT_EQ(static_cast<int>(r.level),
              static_cast<int>(HitLevel::Mem));
}

TEST(Hierarchy, LowPowerConfigHasNoL3)
{
    const MemoryConfig cfg = cpu::lowPowerConfig().memory;
    Hierarchy h(cfg, 2);
    const AccessResult r = h.access(0, 0x7770000, false, 0);
    EXPECT_EQ(static_cast<int>(r.level),
              static_cast<int>(HitLevel::Mem));
    // Second core shares the L2: it can hit there.
    const AccessResult r2 = h.access(1, 0x7770000, false, 100);
    EXPECT_EQ(static_cast<int>(r2.level),
              static_cast<int>(HitLevel::L2));
}

TEST(Hierarchy, RejectsTooManyCores)
{
    const MemoryConfig cfg = cpu::highPerformanceConfig().memory;
    EXPECT_THROW(Hierarchy(cfg, 65), SimError);
    EXPECT_THROW(Hierarchy(cfg, 0), SimError);
}

} // namespace
} // namespace tp::mem
