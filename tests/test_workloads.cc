/**
 * @file
 * Parameterized tests over all 19 workload generators: structural
 * fidelity to Table I (type counts, instance counts), trace validity,
 * determinism and scaling behaviour; plus targeted checks of the
 * benchmark-specific properties the paper calls out.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "workloads/workloads.hh"

namespace tp::work {
namespace {

class WorkloadStructureTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    static WorkloadParams
    params(double scale = 0.125)
    {
        WorkloadParams p;
        p.scale = scale;
        p.seed = 42;
        return p;
    }
};

TEST_P(WorkloadStructureTest, TypeCountMatchesTableOne)
{
    const WorkloadInfo &info = workloadByName(GetParam());
    const trace::TaskTrace t = info.generate(params());
    EXPECT_EQ(t.types().size(), info.paperTaskTypes)
        << info.name << " must expose the paper's task-type count";
}

TEST_P(WorkloadStructureTest, InstanceCountTracksScale)
{
    const WorkloadInfo &info = workloadByName(GetParam());
    const trace::TaskTrace t = info.generate(params());
    // Within 2x of paper_count * scale (structure rounding and
    // structural floors allowed), and never above the paper count.
    EXPECT_LE(t.size(), info.paperInstances + 64);
    EXPECT_GE(t.size(),
              std::min<std::size_t>(info.paperInstances, 192));
}

TEST_P(WorkloadStructureTest, TraceValidates)
{
    const trace::TaskTrace t =
        workloadByName(GetParam()).generate(params());
    EXPECT_NO_THROW(t.validate());
    EXPECT_GT(t.totalInstructions(), 0u);
}

TEST_P(WorkloadStructureTest, DeterministicForSameSeed)
{
    const WorkloadInfo &info = workloadByName(GetParam());
    const trace::TaskTrace a = info.generate(params());
    const trace::TaskTrace b = info.generate(params());
    ASSERT_EQ(a.size(), b.size());
    for (TaskInstanceId i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.instance(i).seed, b.instance(i).seed);
        EXPECT_EQ(a.instance(i).instCount, b.instance(i).instCount);
        EXPECT_EQ(a.instance(i).type, b.instance(i).type);
    }
}

TEST_P(WorkloadStructureTest, DifferentSeedsChangeInstances)
{
    const WorkloadInfo &info = workloadByName(GetParam());
    WorkloadParams p1 = params(), p2 = params();
    p2.seed = 4711;
    const trace::TaskTrace a = info.generate(p1);
    const trace::TaskTrace b = info.generate(p2);
    bool any_diff = false;
    for (TaskInstanceId i = 0;
         i < std::min(a.size(), b.size()) && !any_diff; ++i) {
        any_diff = a.instance(i).seed != b.instance(i).seed;
    }
    EXPECT_TRUE(any_diff);
}

TEST_P(WorkloadStructureTest, InstrScaleGrowsTasks)
{
    const WorkloadInfo &info = workloadByName(GetParam());
    WorkloadParams p1 = params();
    WorkloadParams p2 = params();
    p2.instrScale = 2.0;
    const auto t1 = info.generate(p1).totalInstructions();
    const auto t2 = info.generate(p2).totalInstructions();
    EXPECT_GT(double(t2), 1.5 * double(t1));
}

TEST_P(WorkloadStructureTest, EveryTypeIsInstantiated)
{
    const trace::TaskTrace t =
        workloadByName(GetParam()).generate(params());
    std::set<TaskTypeId> used;
    for (const trace::TaskInstance &ti : t.instances())
        used.insert(ti.type);
    EXPECT_EQ(used.size(), t.types().size())
        << "declared task types must all occur as instances";
}

INSTANTIATE_TEST_SUITE_P(
    AllNineteen, WorkloadStructureTest,
    ::testing::Values(
        "2d-convolution", "3d-stencil", "atomic-monte-carlo-dynamics",
        "dense-matrix-multiplication", "histogram", "n-body",
        "reduction", "sparse-matrix-vector-multiplication",
        "vector-operation", "checkSparseLU", "cholesky", "kmeans",
        "knn", "blackscholes", "bodytrack", "canneal", "dedup",
        "freqmine", "swaptions"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST(WorkloadRegistry, HasAllNineteenInTableOrder)
{
    const auto &all = allWorkloads();
    ASSERT_EQ(all.size(), 19u);
    EXPECT_EQ(all.front().name, "2d-convolution");
    EXPECT_EQ(all.back().name, "swaptions");
    EXPECT_EQ(all[9].name, "checkSparseLU");
}

TEST(WorkloadRegistry, PaperCountsMatchTableOne)
{
    EXPECT_EQ(workloadByName("cholesky").paperInstances, 19600u);
    EXPECT_EQ(workloadByName("cholesky").paperTaskTypes, 4u);
    EXPECT_EQ(workloadByName("checkSparseLU").paperInstances, 22058u);
    EXPECT_EQ(workloadByName("checkSparseLU").paperTaskTypes, 11u);
    EXPECT_EQ(workloadByName("freqmine").paperInstances, 1932u);
    EXPECT_EQ(workloadByName("freqmine").paperTaskTypes, 7u);
    EXPECT_EQ(
        workloadByName("sparse-matrix-vector-multiplication")
            .paperInstances,
        1024u);
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(workloadByName("does-not-exist"), SimError);
}

TEST(WorkloadProperties, FreqmineHasExtremeSizeImbalance)
{
    // Paper Section V-B: dominant type spans 490..11M instructions.
    const trace::TaskTrace t =
        generateWorkload("freqmine", WorkloadParams{});
    const trace::TraceStats s = t.stats();
    EXPECT_GT(double(s.maxInstPerTask) / double(s.minInstPerTask),
              100.0);
}

TEST(WorkloadProperties, DedupHasSevenFoldHashRange)
{
    const trace::TaskTrace t =
        generateWorkload("dedup", WorkloadParams{});
    // Find the dominant (hash) type and check its dynamic range.
    InstCount mn = ~InstCount{0}, mx = 0;
    for (const trace::TaskInstance &ti : t.instances()) {
        if (t.type(ti.type).name != "hash_chunk")
            continue;
        mn = std::min(mn, ti.instCount);
        mx = std::max(mx, ti.instCount);
    }
    EXPECT_GT(double(mx) / double(mn), 4.0);
}

TEST(WorkloadProperties, ReductionParallelismDecreases)
{
    const trace::TaskTrace t =
        generateWorkload("reduction", WorkloadParams{});
    // The dependency DAG must narrow: the last task depends
    // (transitively) on everything, i.e. it has in-degree > 1 and no
    // successors.
    const TaskInstanceId last = t.size() - 1;
    EXPECT_TRUE(t.successors(last).empty());
    EXPECT_GE(t.inDegree(last), 2u);
}

TEST(WorkloadProperties, CholeskyCountFormulaExact)
{
    // N + N(N-1) + N(N-1)(N-2)/6 tasks for N tiles; at full scale the
    // paper's 19600 corresponds to N=48.
    WorkloadParams p;
    p.scale = 1.0;
    const trace::TaskTrace t = generateWorkload("cholesky", p);
    EXPECT_EQ(t.size(), 19600u);
}

TEST(WorkloadProperties, MonteCarloIsEmbarrassinglyParallel)
{
    const trace::TaskTrace t = generateWorkload(
        "atomic-monte-carlo-dynamics", WorkloadParams{});
    for (TaskInstanceId i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.inDegree(i), 0u);
}

TEST(WorkloadProperties, StencilHasWavefrontDependencies)
{
    const trace::TaskTrace t =
        generateWorkload("3d-stencil", WorkloadParams{});
    // No barriers, but later timesteps depend on earlier ones.
    EXPECT_EQ(t.numEpochs(), 1u);
    std::size_t deps = 0;
    for (TaskInstanceId i = 0; i < t.size(); ++i)
        deps += t.inDegree(i);
    EXPECT_GT(deps, t.size()); // ~5 predecessors per interior block
}

TEST(WorkloadProperties, DedupWritesAreSerialized)
{
    const trace::TaskTrace t =
        generateWorkload("dedup", WorkloadParams{});
    // Every write_out except the first depends on the previous one:
    // in-degree >= 2 (its compress + the previous write).
    std::size_t writes = 0, chained = 0;
    for (const trace::TaskInstance &ti : t.instances()) {
        if (t.type(ti.type).name != "write_out")
            continue;
        ++writes;
        chained += t.inDegree(ti.id) >= 2 ? 1 : 0;
    }
    EXPECT_GE(writes, 10u);
    EXPECT_EQ(chained, writes - 1);
}

} // namespace
} // namespace tp::work
