/**
 * @file
 * Unit tests for the common library: RNG, statistics, CLI, tables,
 * logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/flat_map.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/statistics.hh"
#include "common/table.hh"

namespace tp {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 100; ++i)
        vals.insert(r.next());
    EXPECT_GT(vals.size(), 95u);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(13), 13u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, Uniform01MeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform01();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard)
{
    Rng r(17);
    double sum = 0.0, sumsq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sumsq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, LogNormalMedianApproximatelyCorrect)
{
    Rng r(23);
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i)
        xs.push_back(r.logNormal(100.0, 0.5));
    EXPECT_NEAR(percentile(xs, 50.0), 100.0, 5.0);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect)
{
    Rng r(29);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(42.0);
    EXPECT_NEAR(sum / n, 42.0, 1.5);
}

TEST(Rng, BernoulliProbabilityApproximatelyCorrect)
{
    Rng r(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoRespectsMinimum)
{
    Rng r(37);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(r.pareto(5.0, 1.2), 5.0);
}

TEST(Rng, ParetoIsHeavyTailed)
{
    Rng r(41);
    double mx = 0.0;
    for (int i = 0; i < 100000; ++i)
        mx = std::max(mx, r.pareto(1.0, 0.8));
    EXPECT_GT(mx, 1000.0); // alpha<1: extreme draws expected
}

TEST(Rng, ZipfStaysInRange)
{
    Rng r(43);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.zipf(100, 0.8), 100u);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng r(47);
    int low = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        low += r.zipf(1000, 0.9) < 100 ? 1 : 0;
    // Top 10% of ranks should receive far more than 10% of draws.
    EXPECT_GT(double(low) / n, 0.3);
}

TEST(Rng, ZipfHandlesExponentOne)
{
    Rng r(53);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.zipf(64, 1.0), 64u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(99);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Statistics, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Statistics, StddevBasics)
{
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                2.0, 1e-12);
}

TEST(Statistics, SampleVarianceUsesBesselDivisor)
{
    // Population variance of {2,4,4,4,5,5,7,9} is 4 (divisor 8);
    // the unbiased sample variance divides by 7.
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0,
                                    5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(sampleVariance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(sampleStddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
    // With n=4 (the default IPC history size H) the two divisors
    // differ by a factor 4/3 -- the bias the CI math must avoid.
    const std::vector<double> h4 = {1.0, 2.0, 3.0, 4.0};
    EXPECT_NEAR(sampleVariance(h4),
                stddev(h4) * stddev(h4) * 4.0 / 3.0, 1e-12);
}

TEST(Statistics, EmptyAndShortInputsPanicUniformly)
{
    // The whole module shares one contract: too few observations is
    // a caller bug, never a silent 0.0 (a fake zero variance would
    // read as "converged" to the adaptive stopping rule).
    EXPECT_THROW(mean({}), SimError);
    EXPECT_THROW(stddev({}), SimError);
    EXPECT_THROW(sampleVariance({}), SimError);
    EXPECT_THROW(sampleVariance({1.0}), SimError);
    EXPECT_THROW(sampleStddev({1.0}), SimError);
    EXPECT_THROW(geomean({}), SimError);
    EXPECT_THROW(minOf({}), SimError);

    RunningStats rs;
    EXPECT_THROW(rs.mean(), SimError);
    EXPECT_THROW(rs.populationVariance(), SimError);
    EXPECT_THROW(rs.sampleVariance(), SimError);
    EXPECT_THROW(rs.min(), SimError);
    rs.add(1.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 1.0);
    EXPECT_DOUBLE_EQ(rs.populationVariance(), 0.0);
    EXPECT_THROW(rs.sampleVariance(), SimError); // needs n >= 2
}

TEST(Statistics, GeomeanBasics)
{
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_NEAR(geomean({8.0}), 8.0, 1e-12);
}

TEST(Statistics, PercentileLinearInterpolation)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(Statistics, PercentileSingleElement)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 95.0), 7.0);
}

TEST(Statistics, PercentileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 50.0), 5.0);
}

TEST(Statistics, BoxplotQuartilesAndWhiskers)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(double(i));
    const BoxplotStats b = boxplot(xs);
    EXPECT_NEAR(b.median, 50.5, 1e-9);
    EXPECT_NEAR(b.q1, 25.75, 1e-9);
    EXPECT_NEAR(b.q3, 75.25, 1e-9);
    EXPECT_NEAR(b.whiskerLo, 5.95, 1e-9);
    EXPECT_NEAR(b.whiskerHi, 95.05, 1e-9);
    EXPECT_EQ(b.count, 100u);
    // 5 below p5 and 5 above p95.
    EXPECT_EQ(b.outliers, 10u);
}

TEST(Statistics, NormalizeToMeanPct)
{
    const auto out = normalizeToMeanPct({1.0, 3.0}, 2.0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], -50.0);
    EXPECT_DOUBLE_EQ(out[1], 50.0);
}

TEST(Statistics, AbsPctError)
{
    EXPECT_DOUBLE_EQ(absPctError(110.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(absPctError(90.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(absPctError(100.0, 100.0), 0.0);
}

TEST(Statistics, RunningStatsMatchesBatch)
{
    RunningStats rs;
    std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
    for (double x : xs)
        rs.add(x);
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(rs.populationStddev(), stddev(xs), 1e-12);
    EXPECT_NEAR(rs.sampleVariance(), sampleVariance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Statistics, RunningStatsMerge)
{
    RunningStats a, b, all;
    for (double x : {1.0, 2.0, 3.0}) {
        a.add(x);
        all.add(x);
    }
    for (double x : {10.0, 20.0}) {
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.populationVariance(), all.populationVariance(),
                1e-9);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
}

/**
 * Regression for the naive sumSq/n - mean^2 formula: with a large
 * mean and a tight spread (exactly the per-type IPC-history regime,
 * scaled) the two accumulated terms agree in all but their last few
 * bits, the subtraction cancels catastrophically and the clamp that
 * used to hide negative results returned 0 -- i.e. "no variance".
 * Welford's update keeps full precision.
 */
TEST(Statistics, WelfordSurvivesCatastrophicCancellation)
{
    const double base = 1e9;
    const std::vector<double> xs = {base + 4.0, base + 7.0,
                                    base + 13.0, base + 16.0};
    // What the old implementation computed.
    double sum = 0.0, sum_sq = 0.0;
    for (double x : xs) {
        sum += x;
        sum_sq += x * x;
    }
    const double naive_mean = sum / double(xs.size());
    double naive_var =
        sum_sq / double(xs.size()) - naive_mean * naive_mean;
    naive_var = naive_var < 0.0 ? 0.0 : naive_var;
    // True population variance is 22.5; the naive formula loses it
    // entirely (|x|^2 ~ 1e18 swallows a spread of ~1e1 in doubles).
    EXPECT_GT(std::abs(naive_var - 22.5), 1.0)
        << "naive formula unexpectedly survived; regression test "
           "needs a harsher dataset";

    RunningStats rs;
    for (double x : xs)
        rs.add(x);
    EXPECT_NEAR(rs.populationVariance(), 22.5, 1e-6);
    EXPECT_NEAR(rs.sampleVariance(), 30.0, 1e-6);
}

TEST(Statistics, MergeSurvivesCatastrophicCancellation)
{
    const double base = 1e9;
    RunningStats a, b, all;
    for (double x : {base + 4.0, base + 7.0}) {
        a.add(x);
        all.add(x);
    }
    for (double x : {base + 13.0, base + 16.0}) {
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_NEAR(a.mean(), all.mean(), 1e-3);
    EXPECT_NEAR(a.populationVariance(), 22.5, 1e-6);
    EXPECT_NEAR(a.sampleVariance(), 30.0, 1e-6);
}

TEST(Cli, ParsesKeyValueAndFlags)
{
    const char *argv[] = {"prog", "--alpha=3", "--flag",
                          "--name=xyz"};
    CliArgs args(4, argv, {"alpha", "flag", "name"});
    EXPECT_EQ(args.getInt("alpha", 0), 3);
    EXPECT_TRUE(args.has("flag"));
    EXPECT_EQ(args.getString("name", ""), "xyz");
    EXPECT_EQ(args.getInt("missing", 42), 42);
}

TEST(Cli, RejectsUnknownOption)
{
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_THROW(CliArgs(2, argv, {"alpha"}), SimError);
}

TEST(Cli, RejectsMalformedInteger)
{
    const char *argv[] = {"prog", "--alpha=xyz"};
    CliArgs args(2, argv, {"alpha"});
    EXPECT_THROW(args.getInt("alpha", 0), SimError);
}

TEST(Cli, RejectsNegativeForUnsigned)
{
    const char *argv[] = {"prog", "--n=-4"};
    CliArgs args(2, argv, {"n"});
    EXPECT_THROW(args.getUint("n", 0), SimError);
}

TEST(Cli, ParsesLists)
{
    const char *argv[] = {"prog", "--list=a,b,c"};
    CliArgs args(2, argv, {"list"});
    const auto v = args.getList("list", {});
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[1], "b");
}

TEST(Cli, ParsesDoubles)
{
    const char *argv[] = {"prog", "--x=0.25"};
    CliArgs args(2, argv, {"x"});
    EXPECT_DOUBLE_EQ(args.getDouble("x", 1.0), 0.25);
}

TEST(Cli, RejectsEmptyNumericValue)
{
    const char *argv[] = {"prog", "--a=", "--b="};
    CliArgs args(3, argv, {"a", "b"});
    EXPECT_THROW(args.getInt("a", 0), SimError);
    EXPECT_THROW(args.getDouble("b", 0.0), SimError);
}

TEST(Cli, RejectsNonFiniteDoubles)
{
    // strtod happily parses these; a scale of inf or nan must be a
    // hard configuration error, not a silently absurd workload.
    for (const char *v : {"--x=inf", "--x=-inf", "--x=nan",
                          "--x=1e999", "--x=-1e999"}) {
        const char *argv[] = {"prog", v};
        CliArgs args(2, argv, {"x"});
        EXPECT_THROW(args.getDouble("x", 1.0), SimError) << v;
    }
}

TEST(Cli, RejectsOutOfRangeIntegers)
{
    const char *argv[] = {"prog", "--x=99999999999999999999999"};
    CliArgs args(2, argv, {"x"});
    EXPECT_THROW(args.getInt("x", 0), SimError);
    EXPECT_THROW(args.getUint("x", 0), SimError);
}

TEST(Cli, GetUintInEnforcesInclusiveRange)
{
    const char *argv[] = {"prog", "--lo=1", "--hi=100", "--out=101"};
    CliArgs args(4, argv, {"lo", "hi", "out"});
    EXPECT_EQ(args.getUintIn("lo", 5, 1, 100), 1u);
    EXPECT_EQ(args.getUintIn("hi", 5, 1, 100), 100u);
    EXPECT_THROW(args.getUintIn("out", 5, 1, 100), SimError);
    // Absent option: the fallback is the caller's default and is
    // not range-checked.
    EXPECT_EQ(args.getUintIn("missing", 0, 1, 100), 0u);
}

TEST(Cli, GetDoubleInEnforcesInclusiveRange)
{
    const char *argv[] = {"prog", "--lo=0.25", "--hi=4.0",
                          "--out=4.5", "--inf=inf"};
    CliArgs args(5, argv, {"lo", "hi", "out", "inf"});
    EXPECT_DOUBLE_EQ(args.getDoubleIn("lo", 1.0, 0.25, 4.0), 0.25);
    EXPECT_DOUBLE_EQ(args.getDoubleIn("hi", 1.0, 0.25, 4.0), 4.0);
    EXPECT_THROW(args.getDoubleIn("out", 1.0, 0.25, 4.0), SimError);
    EXPECT_THROW(args.getDoubleIn("inf", 1.0, 0.25, 4.0), SimError);
    EXPECT_DOUBLE_EQ(args.getDoubleIn("missing", 0.0, 0.25, 4.0),
                     0.0);
}

TEST(Cli, UnknownOptionErrorSuggestsHelp)
{
    const char *argv[] = {"some/dir/prog", "--bogus=1"};
    try {
        CliArgs args(2, argv, {{"alpha", "the alpha knob"}});
        FAIL() << "unknown option must be fatal";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("--help"),
                  std::string::npos)
            << "error must point at --help";
        EXPECT_NE(std::string(e.what()).find("prog"),
                  std::string::npos)
            << "error must name the binary (basename)";
    }
}

TEST(Cli, GeneratedHelpListsEveryOptionWithDescription)
{
    const std::string help = CliArgs::helpText(
        "prog", {{"alpha", "the alpha knob"},
                 {"beta-mode", "how beta behaves"},
                 jobsCliOption(), cacheDirCliOption(),
                 cacheModeCliOption()});
    EXPECT_NE(help.find("usage: prog"), std::string::npos);
    for (const char *needle :
         {"--alpha", "the alpha knob", "--beta-mode",
          "how beta behaves", "--jobs", "--cache-dir", "--cache",
          "--help", "show this help"})
        EXPECT_NE(help.find(needle), std::string::npos) << needle;
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t("title");
    t.setHeader({"a", "bb"});
    t.addRow({"xxx", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("xxx"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n");
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtCount(1234567ULL), "1,234,567");
    EXPECT_EQ(fmtCount(12ULL), "12");
}

TEST(Logging, PanicThrowsSimError)
{
    EXPECT_THROW(panic("boom %d", 42), SimError);
}

TEST(Logging, FatalThrowsSimError)
{
    EXPECT_THROW(fatal("bad config"), SimError);
}

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(Logging, AssertMacroFires)
{
    EXPECT_THROW([] { tp_assert(1 == 2); }(), SimError);
    EXPECT_NO_THROW([] { tp_assert(1 == 1); }());
}

TEST(FlatMap64, InsertFindUpdateClear)
{
    FlatMap64<std::uint64_t> m(16);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(42), nullptr);

    m[42] = 7;
    EXPECT_EQ(m.size(), 1u);
    ASSERT_NE(m.find(42), nullptr);
    EXPECT_EQ(*m.find(42), 7u);

    // operator[] on an existing key returns the same slot.
    m[42] |= 8;
    EXPECT_EQ(*m.find(42), 15u);
    EXPECT_EQ(m.size(), 1u);

    // Absent key default-constructs.
    EXPECT_EQ(m[99], 0u);
    EXPECT_EQ(m.size(), 2u);

    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(42), nullptr);
}

TEST(FlatMap64, GrowsPastInitialCapacityAndKeepsEntries)
{
    FlatMap64<std::uint64_t> m(16);
    // Dense and colliding keys, far above the initial capacity.
    for (std::uint64_t i = 0; i < 10000; ++i)
        m[i * 64] = i;
    EXPECT_EQ(m.size(), 10000u);
    for (std::uint64_t i = 0; i < 10000; ++i) {
        ASSERT_NE(m.find(i * 64), nullptr) << i;
        EXPECT_EQ(*m.find(i * 64), i);
    }
    EXPECT_EQ(m.find(63), nullptr);
    EXPECT_GE(m.capacity(), 10000u);
}

TEST(FlatMap64, MatchesReferenceMapUnderRandomMix)
{
    FlatMap64<std::uint64_t> m;
    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(3);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t key = rng.nextBounded(4096) * 977;
        if (rng.bernoulli(0.7)) {
            const std::uint64_t val = rng.next();
            m[key] = val;
            ref[key] = val;
        } else {
            const auto it = ref.find(key);
            std::uint64_t *p = m.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(p, nullptr);
            } else {
                ASSERT_NE(p, nullptr);
                EXPECT_EQ(*p, it->second);
            }
        }
    }
    EXPECT_EQ(m.size(), ref.size());
}

} // namespace
} // namespace tp
