/**
 * @file
 * Out-of-process shard executor — the child end of the ProcessPool
 * transport (see harness/process_pool).
 *
 *   taskpoint_worker --shard=FILE --out-dir=DIR [--jobs=N|auto]
 *                    [--cache-dir=DIR] [--cache=off|ro|rw]
 *                    [--checkpoint-dir=DIR] [--trace-out=FILE]
 *                    [--quiet]
 *
 * Reads a serialized plan shard (harness/plan_shard), executes it
 * through the ordinary BatchRunner, and appends each finished job's
 * result to the shard's checksummed envelope stream in --out-dir
 * (see harness/worker; the coordinator live-tails the stream, so a
 * half-flushed tail reads as "not ready yet", never as corruption).
 * Exit code 0 means every job of the shard was published; any
 * error — corrupt shard, invalid job, I/O failure — exits nonzero,
 * which the coordinating driver treats as a shard failure and
 * retries (--max-retries attempts, each with a fresh stream).
 *
 * Drivers normally spawn this binary themselves (--workers=N), but
 * it also works by hand for debugging a single shard.
 */

#include <cstdio>
#include <exception>

#include "common/cli.hh"
#include "common/logging.hh"
#include "harness/result_cache.hh"
#include "harness/worker.hh"

using namespace tp;

int
main(int argc, char **argv)
{
    try {
        const CliArgs args(
            argc, argv,
            {{"shard",
              "serialized plan shard to execute (required)"},
             {"out-dir",
              "directory result files are published into "
              "(required)"},
             {"quiet", "suppress per-job progress lines"},
             jobsCliOption(), cacheDirCliOption(),
             cacheModeCliOption(), checkpointDirCliOption(),
             traceOutCliOption(), faultPlanCliOption()});
        harness::WorkerOptions wo;
        wo.shardPath = args.getString("shard", "");
        wo.outDir = args.getString("out-dir", "");
        wo.traceOutPath = args.getString(kTraceOutOption, "");
        if (wo.shardPath.empty() || wo.outDir.empty())
            fatal("--shard=FILE and --out-dir=DIR are required "
                  "(see --help)");

        const std::unique_ptr<harness::ResultCache> cache =
            harness::resultCacheFromCli(args);
        const std::unique_ptr<harness::ResultCache> checkpoints =
            harness::openCheckpointDir(
                args.getString(kCheckpointDirOption, ""));
        wo.batch.jobs = jobsFlag(args, 1);
        wo.batch.progress = !args.has("quiet");
        wo.batch.cache = cache.get();
        wo.batch.checkpoints = checkpoints.get();
        // The parent pool already expanded the plan; a worker
        // re-expanding its shard would publish more results than
        // the shard promises.
        wo.batch.expandSlices = false;

        const std::size_t published = harness::runWorkerShard(wo);
        if (wo.batch.progress)
            harness::progress(strprintf(
                "worker: published %zu results to %s", published,
                wo.outDir.c_str()));
        if (cache && wo.batch.progress)
            harness::progress(cache->statsLine());
        return 0;
    } catch (const std::exception &e) {
        // The coordinator reads exit codes, not exceptions; report
        // and exit nonzero so the shard is retried.
        std::fprintf(stderr, "taskpoint_worker: %s\n", e.what());
        return 1;
    }
}
