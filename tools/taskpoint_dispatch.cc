/**
 * @file
 * Distributed campaign coordinator and runner (harness/dispatch).
 *
 * Coordinator (default role): split a serialized ExperimentPlan into
 * cost-ordered shard tasks, publish them into a spool directory,
 * optionally spawn local runner processes, live-tail the result
 * streams and print the standard streaming report — byte-identical
 * (host wall-clock aside) to replaying the plan with --jobs=1.
 *
 *   taskpoint_dispatch --plan=FILE [--spool=DIR] [--runners=N]
 *                      [--shards=N] [--jobs=N] [--max-retries=N]
 *                      [--heartbeat=MS] [--dead-after=MS]
 *                      [--stalled-after=MS] [--csv=FILE]
 *                      [--json=FILE] [--trace-out=FILE]
 *                      [--trace-stats=FILE] [--cache-dir=DIR]
 *                      [--cache=off|ro|rw] [--fault-plan=FILE]
 *                      [--cost-probe] [--keep-spool]
 *
 * Runner: join an existing spool (possibly on another machine via a
 * shared filesystem), claim tasks, execute them, stream results
 * back, and exit when the coordinator publishes the stop file.
 *
 *   taskpoint_dispatch --runner --spool=DIR [--runner-id=NAME]
 *                      [--jobs=N] [--heartbeat=MS] [--quiet]
 *                      [--cache-dir=DIR] [--cache=off|ro|rw]
 *
 * See README "Distributed campaigns" for the spool contract.
 */

#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>

#include "common/cli.hh"
#include "common/logging.hh"
#include "harness/dispatch.hh"
#include "harness/job_spec.hh"
#include "harness/result_cache.hh"
#include "harness/result_sink.hh"
#include "harness/trace_report.hh"

using namespace tp;

namespace {

int
runnerMain(const CliArgs &args)
{
    harness::DispatchRunnerOptions ro;
    ro.spoolDir = args.getString("spool", "");
    if (ro.spoolDir.empty())
        fatal("--runner needs --spool=DIR (see --help)");
    ro.runnerId = args.getString("runner-id", "");
    ro.heartbeatInterval = std::chrono::milliseconds(
        args.getUintIn("heartbeat", 200, 10, 60000));
    ro.progress = !args.has("quiet");

    const std::unique_ptr<harness::ResultCache> cache =
        harness::resultCacheFromCli(args);
    ro.batch.jobs = jobsFlag(args, 1);
    ro.batch.progress = false; // per-job lines drown the heartbeat
    ro.batch.cache = cache.get();

    const std::size_t executed = harness::runDispatchRunner(ro);
    if (ro.progress)
        harness::progress(
            strprintf("runner: executed %zu tasks", executed));
    if (cache && ro.progress)
        harness::progress(cache->statsLine());
    return 0;
}

int
coordinatorMain(const CliArgs &args)
{
    const std::string path = args.getString("plan", "");
    if (path.empty())
        fatal("--plan=FILE is required (see --help)");
    const harness::ExperimentPlan plan =
        harness::deserializePlan(path);
    std::printf("plan %s: %zu jobs, digest %s\n", path.c_str(),
                plan.jobs.size(),
                harness::planDigest(plan).c_str());

    harness::DispatchOptions dopt;
    dopt.spoolDir = args.getString("spool", "");
    dopt.shards = static_cast<std::uint32_t>(
        args.getUintIn("shards", 0, 1, 9999));
    dopt.maxRetries = maxRetriesFlag(args);
    dopt.heartbeatInterval = std::chrono::milliseconds(
        args.getUintIn("heartbeat", 200, 10, 60000));
    dopt.deadAfter = std::chrono::milliseconds(
        args.getUintIn("dead-after", 2000, 50, 600000));
    dopt.stalledAfter = std::chrono::milliseconds(
        args.getUintIn("stalled-after", 0, 0, 3600000));
    dopt.localRunners =
        static_cast<std::size_t>(args.getUintIn("runners", 0, 0, 256));
    dopt.runnerBinary = args.getString("runner-bin", "");
    dopt.jobsPerRunner = jobsFlag(args, 1);
    dopt.cacheDir = args.getString(kCacheDirOption, "");
    dopt.cacheMode = args.getString(
        kCacheModeOption, dopt.cacheDir.empty() ? "off" : "rw");
    if (dopt.cacheMode == "off")
        dopt.cacheDir.clear();
    dopt.progress = true;
    dopt.keepSpool = args.has("keep-spool");
    // Trace sinks live here on the coordinator; the shard tasks only
    // carry the "record timelines" bit to the runner fleet.
    const std::string traceOut = args.getString(kTraceOutOption, "");
    const std::string traceStats =
        args.getString(kTraceStatsOption, "");
    dopt.collectTimelines =
        !traceOut.empty() || !traceStats.empty();

    std::unique_ptr<harness::ResultCache> probe;
    if (args.has("cost-probe")) {
        if (dopt.cacheDir.empty())
            fatal("--cost-probe needs a result cache "
                  "(--cache-dir) to probe");
        probe = harness::resultCacheFromCli(args);
        dopt.probeCache = probe.get();
    }

    harness::TableSink table("dispatched plan " + path);
    harness::StatsSink stats;
    std::vector<harness::ResultSink *> sinks = {&table, &stats};
    std::unique_ptr<harness::CsvSink> csv;
    if (const std::string f = args.getString("csv", ""); !f.empty())
        sinks.push_back(
            (csv = std::make_unique<harness::CsvSink>(f)).get());
    std::unique_ptr<harness::JsonSink> json;
    if (const std::string f = args.getString("json", ""); !f.empty())
        sinks.push_back(
            (json = std::make_unique<harness::JsonSink>(f)).get());
    std::unique_ptr<harness::ChromeTraceSink> trace;
    if (!traceOut.empty())
        sinks.push_back(
            (trace = std::make_unique<harness::ChromeTraceSink>(
                 traceOut))
                .get());
    std::unique_ptr<harness::TimelineStatsSink> coreStats;
    if (!traceStats.empty())
        sinks.push_back(
            (coreStats =
                 std::make_unique<harness::TimelineStatsSink>(
                     traceStats))
                .get());
    harness::TeeSink tee(std::move(sinks));

    harness::runDispatchCampaign(plan, dopt, tee);

    if (stats.errorStats().count() > 0) {
        const RunningStats &err = stats.errorStats();
        std::printf("error over %zu comparisons: mean %.2f%%, "
                    "max %.2f%%\n",
                    err.count(), err.mean(), err.max());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const CliArgs args(
            argc, argv,
            {{"plan",
              "serialized experiment plan to dispatch (coordinator; "
              "required)"},
             {"spool",
              "spool directory shared with the runners (default: "
              "coordinator creates a temp spool)"},
             {"runners",
              "local runner processes the coordinator spawns "
              "(default 0: external runners join via --runner)"},
             {"shards",
              "shard tasks to split the plan into (default "
              "2x runners; one result stream exists per task)"},
             {"runner", "run as a runner joining --spool"},
             {"runner-id",
              "runner identity in the spool (default host-pid)"},
             {"runner-bin",
              "binary spawned as a local runner (default: this "
              "executable)"},
             {"heartbeat",
              "runner heartbeat interval in ms (default 200)"},
             {"dead-after",
              "heartbeat-stall span in ms after which a runner is "
              "declared dead and its work stolen (default 2000)"},
             {"stalled-after",
              "span in ms after which a claimed task's silent "
              "result stream is declared stalled and its jobs "
              "stolen (default 0 = max(30*dead-after, 60s))"},
             {"cost-probe",
              "probe --cache-dir per job and schedule fully "
              "cache-hit shards first"},
             {"keep-spool",
              "keep a coordinator-created temp spool for "
              "post-mortems"},
             {"csv", "also stream results to this file as CSV rows"},
             {"json",
              "also stream results to this file as a JSON array"},
             {"quiet", "suppress runner progress lines"},
             jobsCliOption(), maxRetriesCliOption(),
             cacheDirCliOption(), cacheModeCliOption(),
             traceOutCliOption(), traceStatsCliOption(),
             faultPlanCliOption()});
        if (args.has("runner"))
            return runnerMain(args);
        return coordinatorMain(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "taskpoint_dispatch: %s\n", e.what());
        return 1;
    }
}
