/**
 * @file
 * Fixed-scenario performance smoke: the simulator's speed trajectory.
 *
 *   ./perf_smoke [--series=N] [--out=FILE] [--repeat=N] [--scale=S]
 *
 * Times a small fixed suite — three workloads, each in full-detailed,
 * lazy-sampled, checkpoint-recording and adaptive-sampled mode, at
 * fixed scale/seed/threads — and emits a
 * JSON report with host wall seconds and detailed-mode simulation
 * throughput (instructions per second) per scenario, plus suite
 * totals. The simulated metrics (total cycles, instruction counts)
 * are deterministic, so the report doubles as a coarse regression
 * check; the timing fields are what the BENCH_*.json trajectory
 * tracks across PRs. Each scenario runs `--repeat` times (default 3)
 * and reports the fastest run, damping scheduler noise.
 *
 * The report also times one fixed plan executed in-process
 * (BatchRunner) and as a spool-based dispatch campaign with
 * in-process runner threads; the delta is the coordination cost of
 * harness/dispatch (task publishing, claiming, stream tailing and
 * per-runner trace generation) with no fork/exec noise in it. A
 * second probe times one sampled scenario with and without a
 * TimelineRecorder attached, tracking the cost of execution tracing
 * (sim/trace_observer) against its zero-overhead-when-off contract.
 * A third probe holds the fault-injection hooks
 * (common/fault_injection) to theirs: the per-call cost of an
 * inactive FAULT_POINT and the wall-time of one sampled scenario
 * with no plan vs an inert plan installed must both stay at noise
 * level.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/fault_injection.hh"
#include "common/logging.hh"
#include "harness/batch_runner.hh"
#include "harness/dispatch.hh"
#include "harness/experiment.hh"
#include "sampling/taskpoint.hh"
#include "sim/checkpoint.hh"
#include "sim/trace_observer.hh"
#include "workloads/workloads.hh"

using namespace tp;

namespace {

enum class Mode { Detailed, Sampled, Checkpointed, Adaptive };

struct Scenario
{
    const char *workload;
    Mode mode;
};

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Detailed:
        return "detailed";
      case Mode::Sampled:
        return "sampled";
      case Mode::Checkpointed:
        return "checkpointed";
      case Mode::Adaptive:
        return "adaptive";
    }
    return "?";
}

/**
 * The fixed suite: a coherence-heavy kernel (histogram), an
 * irregular memory-bound one (spmv) and a pointer-chasing one
 * (n-body) — each detailed, lazy-sampled, checkpoint-recording
 * (lazy-sampled while serializing a warm-state checkpoint at every
 * sample boundary; the column tracks the recording overhead) and
 * adaptive-sampled (1% CI target). Fixed seeds, threads and scale
 * make runs comparable across PRs on one machine.
 */
constexpr Scenario kScenarios[] = {
    {"histogram", Mode::Detailed},
    {"histogram", Mode::Sampled},
    {"histogram", Mode::Checkpointed},
    {"histogram", Mode::Adaptive},
    {"sparse-matrix-vector-multiplication", Mode::Detailed},
    {"sparse-matrix-vector-multiplication", Mode::Sampled},
    {"sparse-matrix-vector-multiplication", Mode::Checkpointed},
    {"sparse-matrix-vector-multiplication", Mode::Adaptive},
    {"n-body", Mode::Detailed},
    {"n-body", Mode::Sampled},
    {"n-body", Mode::Checkpointed},
    {"n-body", Mode::Adaptive},
};

struct Measured
{
    std::string name;
    std::string mode;
    double wallSeconds = 0.0;
    InstCount detailedInsts = 0;
    InstCount fastInsts = 0;
    Cycles totalCycles = 0;
    double detailedInstsPerSec = 0.0;
    /** Serialized checkpoint bytes (checkpointed mode only). */
    std::uint64_t checkpointBytes = 0;
    /** Recorded sample boundaries (checkpointed mode only). */
    std::uint64_t checkpointCount = 0;
};

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Dispatch-vs-in-process timing of one fixed plan. */
struct DispatchOverhead
{
    std::size_t jobs = 0;
    double inprocSeconds = 0.0;
    double dispatchSeconds = 0.0;
};

/**
 * Time a six-job sampled plan once through BatchRunner and once as a
 * dispatch campaign over a temp spool with two runner threads
 * (fastest of `repeat` each). Everything is in one process, so the
 * delta isolates the spool protocol itself.
 */
DispatchOverhead
measureDispatchOverhead(const work::WorkloadParams &wp,
                        const harness::RunSpec &spec,
                        std::uint64_t repeat)
{
    harness::ExperimentPlan plan;
    plan.baseSeed = 42;
    for (std::size_t i = 0; i < 6; ++i) {
        harness::JobSpec j;
        j.label = "dispatch job " + std::to_string(i);
        j.workload = i % 2 == 0
                         ? "histogram"
                         : "sparse-matrix-vector-multiplication";
        j.workloadParams = wp;
        j.spec = spec;
        j.sampling = sampling::SamplingParams::lazy();
        j.mode = harness::BatchMode::Sampled;
        plan.jobs.push_back(j);
    }

    DispatchOverhead oh;
    oh.jobs = plan.jobs.size();

    oh.inprocSeconds = -1.0;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        harness::CollectingSink sink;
        const double t0 = nowSeconds();
        harness::BatchRunner().run(plan, sink);
        const double wall = nowSeconds() - t0;
        if (oh.inprocSeconds < 0.0 || wall < oh.inprocSeconds)
            oh.inprocSeconds = wall;
    }

    namespace fs = std::filesystem;
    const fs::path spoolDir =
        fs::temp_directory_path() /
        ("tp_perf_dispatch_" + std::to_string(::getpid()));
    oh.dispatchSeconds = -1.0;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        fs::remove_all(spoolDir);
        fs::create_directories(spoolDir);
        harness::DispatchOptions dopt;
        dopt.spoolDir = spoolDir.string();
        dopt.shards = 4;
        std::vector<std::thread> runners;
        for (int i = 0; i < 2; ++i) {
            harness::DispatchRunnerOptions ro;
            ro.spoolDir = dopt.spoolDir;
            ro.runnerId = "perf-" + std::to_string(i);
            runners.emplace_back([ro] {
                (void)harness::runDispatchRunner(ro);
            });
        }
        harness::CollectingSink sink;
        const double t0 = nowSeconds();
        harness::runDispatchCampaign(plan, dopt, sink);
        const double wall = nowSeconds() - t0;
        for (std::thread &t : runners)
            t.join();
        if (oh.dispatchSeconds < 0.0 || wall < oh.dispatchSeconds)
            oh.dispatchSeconds = wall;
    }
    fs::remove_all(spoolDir);
    return oh;
}

/** Tracing-vs-plain timing of one fixed sampled scenario. */
struct TraceOverhead
{
    double plainSeconds = 0.0;
    double tracedSeconds = 0.0;
    std::uint64_t taskEvents = 0;
    std::uint64_t phaseEvents = 0;
};

/**
 * Time the histogram lazy-sampled scenario once bare and once with a
 * TimelineRecorder observing every task and phase event (fastest of
 * `repeat` each). The delta is the cost of execution tracing; the
 * bare run exercises the null-observer fast path the engine promises
 * is free.
 */
TraceOverhead
measureTraceOverhead(const work::WorkloadParams &wp,
                     const harness::RunSpec &spec,
                     std::uint64_t repeat)
{
    const trace::TaskTrace trace =
        work::generateWorkload("histogram", wp);
    const sampling::SamplingParams params =
        sampling::SamplingParams::lazy();

    TraceOverhead oh;
    oh.plainSeconds = -1.0;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        const double t0 = nowSeconds();
        (void)harness::runSampled(trace, spec, params);
        const double wall = nowSeconds() - t0;
        if (oh.plainSeconds < 0.0 || wall < oh.plainSeconds)
            oh.plainSeconds = wall;
    }
    oh.tracedSeconds = -1.0;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        sim::TimelineRecorder recorder;
        const double t0 = nowSeconds();
        (void)harness::runSampled(trace, spec, params, nullptr,
                                  &recorder);
        const double wall = nowSeconds() - t0;
        if (oh.tracedSeconds < 0.0 || wall < oh.tracedSeconds)
            oh.tracedSeconds = wall;
        oh.taskEvents = recorder.timeline().tasks.size();
        oh.phaseEvents = recorder.timeline().phases.size();
    }
    return oh;
}

/** Fault-hook cost of one fixed sampled scenario. */
struct FaultOverhead
{
    /** Per-call cost of an inactive FAULT_POINT, nanoseconds. */
    double pointNs = 0.0;
    double plainSeconds = 0.0;
    double inertPlanSeconds = 0.0;
};

/**
 * Keep the FAULT_POINT loop an out-of-line call per iteration so the
 * probe times the macro as sites actually use it, not a hoisted
 * remnant of it.
 */
#if defined(__GNUC__)
__attribute__((noinline))
#endif
std::uint64_t
faultPointOnce(std::uint64_t i)
{
    FAULT_POINT("perf.fault.probe");
    return i;
}

/**
 * Hold the fault hooks to their zero-overhead-when-off contract:
 * time a tight loop of inactive FAULT_POINTs (per-call ns), then the
 * histogram lazy-sampled scenario with no plan installed vs with an
 * inert plan (one rule on a site that never fires, so every
 * instrumented site takes the slow path into the injector and
 * misses). Both deltas must stay at noise level.
 */
FaultOverhead
measureFaultOverhead(const work::WorkloadParams &wp,
                     const harness::RunSpec &spec,
                     std::uint64_t repeat)
{
    FaultOverhead oh;

    fault::clearFaultPlan();
    constexpr std::uint64_t kCalls = 20'000'000;
    std::uint64_t sink = 0;
    oh.pointNs = -1.0;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        const double t0 = nowSeconds();
        for (std::uint64_t i = 0; i < kCalls; ++i)
            sink += faultPointOnce(i);
        const double ns = (nowSeconds() - t0) * 1e9 / kCalls;
        if (oh.pointNs < 0.0 || ns < oh.pointNs)
            oh.pointNs = ns;
    }
    if (sink == 0xdead) // keep the accumulator observable
        harness::progress("fault: improbable checksum");

    const trace::TaskTrace trace =
        work::generateWorkload("histogram", wp);
    const sampling::SamplingParams params =
        sampling::SamplingParams::lazy();

    oh.plainSeconds = -1.0;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        const double t0 = nowSeconds();
        (void)harness::runSampled(trace, spec, params);
        const double wall = nowSeconds() - t0;
        if (oh.plainSeconds < 0.0 || wall < oh.plainSeconds)
            oh.plainSeconds = wall;
    }

    fault::FaultPlan inert;
    inert.seed = 1;
    fault::FaultRule never;
    never.site = "perf.fault.never";
    never.occurrence = 1;
    never.action.kind = fault::FaultKind::Delay;
    inert.rules.push_back(never);
    fault::installFaultPlan(inert);
    oh.inertPlanSeconds = -1.0;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        const double t0 = nowSeconds();
        (void)harness::runSampled(trace, spec, params);
        const double wall = nowSeconds() - t0;
        if (oh.inertPlanSeconds < 0.0 || wall < oh.inertPlanSeconds)
            oh.inertPlanSeconds = wall;
    }
    fault::clearFaultPlan();
    return oh;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        {{"series",
          "BENCH series number: sets the report's \"pr\" field and "
          "the default --out=BENCH_<series>.json (default 10)"},
         {"out",
          "JSON report path (default BENCH_<series>.json)"},
         {"repeat",
          "timed repetitions per scenario, fastest wins (default 3)"},
         {"scale", "workload scale override (default 0.02)"}});
    const std::uint64_t series =
        args.getUintIn("series", 10, 1, 9999);
    const std::string out_path = args.getString(
        "out", strprintf("BENCH_%llu.json",
                         static_cast<unsigned long long>(series)));
    const std::uint64_t repeat = args.getUintIn("repeat", 3, 1, 100);
    const double scale = args.getDoubleIn("scale", 0.02, 1e-4, 10.0);

    work::WorkloadParams wp;
    wp.scale = scale;
    wp.seed = 42;

    harness::RunSpec spec;
    spec.arch = cpu::highPerformanceConfig();
    spec.threads = 8;

    std::vector<Measured> rows;
    for (const Scenario &sc : kScenarios) {
        const trace::TaskTrace trace =
            work::generateWorkload(sc.workload, wp);
        Measured m;
        m.name = sc.workload;
        m.mode = modeName(sc.mode);
        m.wallSeconds = -1.0;
        for (std::uint64_t r = 0; r < repeat; ++r) {
            // Checkpointed mode serializes every boundary's warm
            // state (and drops it): the lazy-vs-checkpointed delta
            // is pure recording overhead.
            std::uint64_t ckptBytes = 0;
            std::uint64_t ckptCount = 0;
            sim::CheckpointHooks hooks;
            hooks.record = [&](sim::Checkpoint &&cp) {
                ckptBytes += sim::serializeCheckpoint(cp).size();
                ++ckptCount;
            };
            const double t0 = nowSeconds();
            sim::SimResult res =
                sc.mode == Mode::Detailed
                    ? harness::runDetailed(trace, spec)
                    : harness::runSampled(
                          trace, spec,
                          sc.mode == Mode::Adaptive
                              ? sampling::SamplingParams::adaptive(
                                    0.01)
                              : sampling::SamplingParams::lazy(),
                          sc.mode == Mode::Checkpointed ? &hooks
                                                        : nullptr)
                          .result;
            const double wall = nowSeconds() - t0;
            if (m.wallSeconds < 0.0 || wall < m.wallSeconds)
                m.wallSeconds = wall;
            // Deterministic across repetitions by construction.
            m.detailedInsts = res.detailedInsts;
            m.fastInsts = res.fastInsts;
            m.totalCycles = res.totalCycles;
            m.checkpointBytes = ckptBytes;
            m.checkpointCount = ckptCount;
        }
        m.detailedInstsPerSec =
            m.wallSeconds > 0.0
                ? double(m.detailedInsts) / m.wallSeconds
                : 0.0;
        rows.push_back(m);
        harness::progress(strprintf(
            "%s/%s: %.3fs, %.2fM detailed insts/s", m.name.c_str(),
            m.mode.c_str(), m.wallSeconds,
            m.detailedInstsPerSec / 1e6));
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write %s", out_path.c_str());
    std::fprintf(f, "{\n  \"bench\": \"perf_smoke\",\n");
    std::fprintf(f, "  \"pr\": %llu,\n",
                 static_cast<unsigned long long>(series));
    std::fprintf(f, "  \"threads\": %u,\n", spec.threads);
    std::fprintf(f, "  \"scale\": %g,\n", scale);
    std::fprintf(f, "  \"repeat\": %llu,\n",
                 static_cast<unsigned long long>(repeat));
    std::fprintf(f, "  \"scenarios\": [\n");
    double total_wall = 0.0;
    double detailed_wall = 0.0;
    InstCount detailed_insts = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Measured &m = rows[i];
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"mode\": \"%s\", "
            "\"wall_seconds\": %.6f, \"total_cycles\": %llu, "
            "\"detailed_insts\": %llu, \"fast_insts\": %llu, "
            "\"detailed_insts_per_sec\": %.0f, "
            "\"checkpoints\": %llu, "
            "\"checkpoint_bytes\": %llu}%s\n",
            m.name.c_str(), m.mode.c_str(), m.wallSeconds,
            static_cast<unsigned long long>(m.totalCycles),
            static_cast<unsigned long long>(m.detailedInsts),
            static_cast<unsigned long long>(m.fastInsts),
            m.detailedInstsPerSec,
            static_cast<unsigned long long>(m.checkpointCount),
            static_cast<unsigned long long>(m.checkpointBytes),
            i + 1 < rows.size() ? "," : "");
        total_wall += m.wallSeconds;
        if (m.mode == "detailed") {
            detailed_wall += m.wallSeconds;
            detailed_insts += m.detailedInsts;
        }
    }
    std::fprintf(f, "  ],\n");

    const DispatchOverhead oh =
        measureDispatchOverhead(wp, spec, repeat);
    std::fprintf(f,
                 "  \"dispatch\": {\"jobs\": %zu, "
                 "\"inproc_wall_seconds\": %.6f, "
                 "\"campaign_wall_seconds\": %.6f, "
                 "\"overhead_seconds\": %.6f},\n",
                 oh.jobs, oh.inprocSeconds, oh.dispatchSeconds,
                 oh.dispatchSeconds - oh.inprocSeconds);
    harness::progress(strprintf(
        "dispatch: %zu jobs, %.3fs in-process vs %.3fs campaign "
        "(overhead %.3fs)",
        oh.jobs, oh.inprocSeconds, oh.dispatchSeconds,
        oh.dispatchSeconds - oh.inprocSeconds));

    const TraceOverhead toh =
        measureTraceOverhead(wp, spec, repeat);
    std::fprintf(f,
                 "  \"trace\": {\"plain_wall_seconds\": %.6f, "
                 "\"traced_wall_seconds\": %.6f, "
                 "\"overhead_seconds\": %.6f, "
                 "\"task_events\": %llu, "
                 "\"phase_events\": %llu},\n",
                 toh.plainSeconds, toh.tracedSeconds,
                 toh.tracedSeconds - toh.plainSeconds,
                 static_cast<unsigned long long>(toh.taskEvents),
                 static_cast<unsigned long long>(toh.phaseEvents));
    harness::progress(strprintf(
        "trace: %.3fs plain vs %.3fs recorded (%llu task events, "
        "overhead %.3fs)",
        toh.plainSeconds, toh.tracedSeconds,
        static_cast<unsigned long long>(toh.taskEvents),
        toh.tracedSeconds - toh.plainSeconds));

    const FaultOverhead foh = measureFaultOverhead(wp, spec, repeat);
    std::fprintf(f,
                 "  \"fault\": {\"point_ns_inactive\": %.3f, "
                 "\"plain_wall_seconds\": %.6f, "
                 "\"inert_plan_wall_seconds\": %.6f, "
                 "\"overhead_seconds\": %.6f},\n",
                 foh.pointNs, foh.plainSeconds, foh.inertPlanSeconds,
                 foh.inertPlanSeconds - foh.plainSeconds);
    harness::progress(strprintf(
        "fault: %.2fns per inactive FAULT_POINT, %.3fs plain vs "
        "%.3fs inert plan (overhead %.3fs)",
        foh.pointNs, foh.plainSeconds, foh.inertPlanSeconds,
        foh.inertPlanSeconds - foh.plainSeconds));

    std::fprintf(f, "  \"total_wall_seconds\": %.6f,\n", total_wall);
    std::fprintf(f, "  \"detailed_wall_seconds\": %.6f,\n",
                 detailed_wall);
    std::fprintf(
        f, "  \"detailed_insts_per_sec\": %.0f\n",
        detailed_wall > 0.0 ? double(detailed_insts) / detailed_wall
                            : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);
    harness::progress(strprintf(
        "suite: %.3fs total, %.2fM detailed insts/s -> %s",
        total_wall, detailed_wall > 0.0
                        ? double(detailed_insts) / detailed_wall / 1e6
                        : 0.0,
        out_path.c_str()));
    return 0;
}
