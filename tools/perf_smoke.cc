/**
 * @file
 * Fixed-scenario performance smoke: the simulator's speed trajectory.
 *
 *   ./perf_smoke [--out=BENCH_7.json] [--repeat=N] [--scale=S]
 *
 * Times a small fixed suite — three workloads, each in full-detailed,
 * lazy-sampled, checkpoint-recording and adaptive-sampled mode, at
 * fixed scale/seed/threads — and emits a
 * JSON report with host wall seconds and detailed-mode simulation
 * throughput (instructions per second) per scenario, plus suite
 * totals. The simulated metrics (total cycles, instruction counts)
 * are deterministic, so the report doubles as a coarse regression
 * check; the timing fields are what the BENCH_*.json trajectory
 * tracks across PRs. Each scenario runs `--repeat` times (default 3)
 * and reports the fastest run, damping scheduler noise.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "harness/experiment.hh"
#include "sampling/taskpoint.hh"
#include "sim/checkpoint.hh"
#include "workloads/workloads.hh"

using namespace tp;

namespace {

enum class Mode { Detailed, Sampled, Checkpointed, Adaptive };

struct Scenario
{
    const char *workload;
    Mode mode;
};

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Detailed:
        return "detailed";
      case Mode::Sampled:
        return "sampled";
      case Mode::Checkpointed:
        return "checkpointed";
      case Mode::Adaptive:
        return "adaptive";
    }
    return "?";
}

/**
 * The fixed suite: a coherence-heavy kernel (histogram), an
 * irregular memory-bound one (spmv) and a pointer-chasing one
 * (n-body) — each detailed, lazy-sampled, checkpoint-recording
 * (lazy-sampled while serializing a warm-state checkpoint at every
 * sample boundary; the column tracks the recording overhead) and
 * adaptive-sampled (1% CI target). Fixed seeds, threads and scale
 * make runs comparable across PRs on one machine.
 */
constexpr Scenario kScenarios[] = {
    {"histogram", Mode::Detailed},
    {"histogram", Mode::Sampled},
    {"histogram", Mode::Checkpointed},
    {"histogram", Mode::Adaptive},
    {"sparse-matrix-vector-multiplication", Mode::Detailed},
    {"sparse-matrix-vector-multiplication", Mode::Sampled},
    {"sparse-matrix-vector-multiplication", Mode::Checkpointed},
    {"sparse-matrix-vector-multiplication", Mode::Adaptive},
    {"n-body", Mode::Detailed},
    {"n-body", Mode::Sampled},
    {"n-body", Mode::Checkpointed},
    {"n-body", Mode::Adaptive},
};

struct Measured
{
    std::string name;
    std::string mode;
    double wallSeconds = 0.0;
    InstCount detailedInsts = 0;
    InstCount fastInsts = 0;
    Cycles totalCycles = 0;
    double detailedInstsPerSec = 0.0;
    /** Serialized checkpoint bytes (checkpointed mode only). */
    std::uint64_t checkpointBytes = 0;
    /** Recorded sample boundaries (checkpointed mode only). */
    std::uint64_t checkpointCount = 0;
};

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        {{"out", "JSON report path (default BENCH_7.json)"},
         {"repeat",
          "timed repetitions per scenario, fastest wins (default 3)"},
         {"scale", "workload scale override (default 0.02)"}});
    const std::string out_path =
        args.getString("out", "BENCH_7.json");
    const std::uint64_t repeat = args.getUintIn("repeat", 3, 1, 100);
    const double scale = args.getDoubleIn("scale", 0.02, 1e-4, 10.0);

    work::WorkloadParams wp;
    wp.scale = scale;
    wp.seed = 42;

    harness::RunSpec spec;
    spec.arch = cpu::highPerformanceConfig();
    spec.threads = 8;

    std::vector<Measured> rows;
    for (const Scenario &sc : kScenarios) {
        const trace::TaskTrace trace =
            work::generateWorkload(sc.workload, wp);
        Measured m;
        m.name = sc.workload;
        m.mode = modeName(sc.mode);
        m.wallSeconds = -1.0;
        for (std::uint64_t r = 0; r < repeat; ++r) {
            // Checkpointed mode serializes every boundary's warm
            // state (and drops it): the lazy-vs-checkpointed delta
            // is pure recording overhead.
            std::uint64_t ckptBytes = 0;
            std::uint64_t ckptCount = 0;
            sim::CheckpointHooks hooks;
            hooks.record = [&](sim::Checkpoint &&cp) {
                ckptBytes += sim::serializeCheckpoint(cp).size();
                ++ckptCount;
            };
            const double t0 = nowSeconds();
            sim::SimResult res =
                sc.mode == Mode::Detailed
                    ? harness::runDetailed(trace, spec)
                    : harness::runSampled(
                          trace, spec,
                          sc.mode == Mode::Adaptive
                              ? sampling::SamplingParams::adaptive(
                                    0.01)
                              : sampling::SamplingParams::lazy(),
                          sc.mode == Mode::Checkpointed ? &hooks
                                                        : nullptr)
                          .result;
            const double wall = nowSeconds() - t0;
            if (m.wallSeconds < 0.0 || wall < m.wallSeconds)
                m.wallSeconds = wall;
            // Deterministic across repetitions by construction.
            m.detailedInsts = res.detailedInsts;
            m.fastInsts = res.fastInsts;
            m.totalCycles = res.totalCycles;
            m.checkpointBytes = ckptBytes;
            m.checkpointCount = ckptCount;
        }
        m.detailedInstsPerSec =
            m.wallSeconds > 0.0
                ? double(m.detailedInsts) / m.wallSeconds
                : 0.0;
        rows.push_back(m);
        harness::progress(strprintf(
            "%s/%s: %.3fs, %.2fM detailed insts/s", m.name.c_str(),
            m.mode.c_str(), m.wallSeconds,
            m.detailedInstsPerSec / 1e6));
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write %s", out_path.c_str());
    std::fprintf(f, "{\n  \"bench\": \"perf_smoke\",\n");
    std::fprintf(f, "  \"pr\": 7,\n");
    std::fprintf(f, "  \"threads\": %u,\n", spec.threads);
    std::fprintf(f, "  \"scale\": %g,\n", scale);
    std::fprintf(f, "  \"repeat\": %llu,\n",
                 static_cast<unsigned long long>(repeat));
    std::fprintf(f, "  \"scenarios\": [\n");
    double total_wall = 0.0;
    double detailed_wall = 0.0;
    InstCount detailed_insts = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Measured &m = rows[i];
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"mode\": \"%s\", "
            "\"wall_seconds\": %.6f, \"total_cycles\": %llu, "
            "\"detailed_insts\": %llu, \"fast_insts\": %llu, "
            "\"detailed_insts_per_sec\": %.0f, "
            "\"checkpoints\": %llu, "
            "\"checkpoint_bytes\": %llu}%s\n",
            m.name.c_str(), m.mode.c_str(), m.wallSeconds,
            static_cast<unsigned long long>(m.totalCycles),
            static_cast<unsigned long long>(m.detailedInsts),
            static_cast<unsigned long long>(m.fastInsts),
            m.detailedInstsPerSec,
            static_cast<unsigned long long>(m.checkpointCount),
            static_cast<unsigned long long>(m.checkpointBytes),
            i + 1 < rows.size() ? "," : "");
        total_wall += m.wallSeconds;
        if (m.mode == "detailed") {
            detailed_wall += m.wallSeconds;
            detailed_insts += m.detailedInsts;
        }
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"total_wall_seconds\": %.6f,\n", total_wall);
    std::fprintf(f, "  \"detailed_wall_seconds\": %.6f,\n",
                 detailed_wall);
    std::fprintf(
        f, "  \"detailed_insts_per_sec\": %.0f\n",
        detailed_wall > 0.0 ? double(detailed_insts) / detailed_wall
                            : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);
    harness::progress(strprintf(
        "suite: %.3fs total, %.2fM detailed insts/s -> %s",
        total_wall, detailed_wall > 0.0
                        ? double(detailed_insts) / detailed_wall / 1e6
                        : 0.0,
        out_path.c_str()));
    return 0;
}
