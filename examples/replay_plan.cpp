/**
 * @file
 * Generic executor for serialized ExperimentPlans — the front door
 * for shipping a batch to another process or machine.
 *
 *   ./replay_plan --plan=FILE [--jobs=N|auto] [--list]
 *                 [--workers=N|auto] [--worker-bin=PATH]
 *                 [--csv=FILE] [--json=FILE]
 *                 [--trace-out=FILE] [--trace-stats=FILE]
 *                 [--cache-dir=DIR] [--cache=off|ro|rw]
 *                 [--checkpoint-dir=DIR]
 *
 * Any driver (or user code) can serialize a plan with
 * harness::serializePlan; this binary loads it, prints its digest,
 * and executes it with a streaming report: the standard batch
 * summary table plus an O(1) error-statistics accumulator, composed
 * through a TeeSink — optionally teeing machine-readable CSV/JSON
 * row streams to files. Deterministic fields of the report are
 * byte-identical to running the plan in the process that built it —
 * only host wall-clock columns differ — and `--workers=N` executes
 * the plan across spawned taskpoint_worker processes with the same
 * guarantee. `--list` inspects the jobs without simulating anything.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "harness/batch_runner.hh"
#include "harness/process_pool.hh"
#include "harness/result_cache.hh"
#include "harness/trace_report.hh"

using namespace tp;

namespace {

const char *
modeName(harness::BatchMode m)
{
    switch (m) {
      case harness::BatchMode::Sampled:
        return "sampled";
      case harness::BatchMode::Reference:
        return "reference";
      case harness::BatchMode::Both:
        return "both";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        {{"plan", "serialized experiment plan to execute (required)"},
         {"list", "print the plan's jobs instead of running them"},
         {"csv", "also stream results to this file as CSV rows"},
         {"json", "also stream results to this file as a JSON array"},
         jobsCliOption(), workersCliOption(), workerBinCliOption(),
         maxRetriesCliOption(), cacheDirCliOption(),
         cacheModeCliOption(), checkpointDirCliOption(),
         traceOutCliOption(), traceStatsCliOption(),
         faultPlanCliOption()});
    const std::string path = args.getString("plan", "");
    if (path.empty())
        fatal("--plan=FILE is required (see --help)");

    const harness::ExperimentPlan plan =
        harness::deserializePlan(path);
    std::printf("plan %s: %zu jobs, baseSeed %llu, deriveSeeds %s, "
                "digest %s\n",
                path.c_str(), plan.jobs.size(),
                static_cast<unsigned long long>(plan.baseSeed),
                plan.deriveSeeds ? "yes" : "no",
                harness::planDigest(plan).c_str());

    if (args.has("list")) {
        TextTable t("jobs");
        t.setHeader({"#", "label", "source", "mode", "threads",
                     "digest"});
        for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
            const harness::JobSpec &j = plan.jobs[i];
            t.addRow({std::to_string(i), j.label,
                      j.traceFile.empty() ? j.workload
                                          : "file:" + j.traceFile,
                      modeName(j.mode),
                      std::to_string(j.spec.threads),
                      harness::jobSpecDigest(j).substr(0, 12)});
        }
        t.print();
        return 0;
    }

    harness::TableSink table("replayed plan " + path);
    harness::StatsSink stats;
    std::vector<harness::ResultSink *> sinks = {&table, &stats};
    std::unique_ptr<harness::CsvSink> csv;
    if (const std::string f = args.getString("csv", ""); !f.empty())
        sinks.push_back(
            (csv = std::make_unique<harness::CsvSink>(f)).get());
    std::unique_ptr<harness::JsonSink> json;
    if (const std::string f = args.getString("json", ""); !f.empty())
        sinks.push_back(
            (json = std::make_unique<harness::JsonSink>(f)).get());
    const std::string traceOut =
        args.getString(kTraceOutOption, "");
    const std::string traceStats =
        args.getString(kTraceStatsOption, "");
    std::unique_ptr<harness::ChromeTraceSink> trace;
    if (!traceOut.empty())
        sinks.push_back(
            (trace = std::make_unique<harness::ChromeTraceSink>(
                 traceOut))
                .get());
    std::unique_ptr<harness::TimelineStatsSink> coreStats;
    if (!traceStats.empty())
        sinks.push_back(
            (coreStats =
                 std::make_unique<harness::TimelineStatsSink>(
                     traceStats))
                .get());
    harness::TeeSink tee(std::move(sinks));

    const harness::ProcessPoolOptions poolOpts =
        harness::processPoolFromCli(args);
    if (poolOpts.workers > 0) {
        // Multi-process: workers consult the cache and checkpoint
        // store themselves (the pool forwards the directories) and
        // ship timelines back when a trace sink is active.
        harness::ProcessPool(poolOpts).run(plan, tee);
    } else {
        const std::unique_ptr<harness::ResultCache> cache =
            harness::resultCacheFromCli(args);
        const std::unique_ptr<harness::ResultCache> checkpoints =
            harness::openCheckpointDir(
                args.getString(kCheckpointDirOption, ""));
        harness::BatchOptions opts;
        opts.jobs = jobsFlag(args, 1);
        opts.progress = true;
        opts.cache = cache.get();
        opts.checkpoints = checkpoints.get();
        opts.collectTimelines =
            !traceOut.empty() || !traceStats.empty();
        harness::BatchRunner(opts).run(plan, tee);
        if (cache)
            harness::progress(cache->statsLine());
    }

    if (stats.errorStats().count() > 0) {
        const RunningStats &err = stats.errorStats();
        std::printf("error over %zu comparisons: mean %.2f%%, "
                    "max %.2f%%\n",
                    err.count(), err.mean(), err.max());
    }
    return 0;
}
