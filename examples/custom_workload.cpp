/**
 * @file
 * Building a custom task-based application with the public trace API
 * and simulating it under TaskPoint — the path a user takes to study
 * their own workload.
 *
 * The example models a small bioinformatics-style pipeline:
 * per-chromosome "align" tasks (irregular, heavy) feed "sort" tasks,
 * which merge into one "report" per batch, with a taskwait between
 * batches. It also demonstrates trace serialization so the same
 * workload can be re-simulated later or on other configurations.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "trace/trace_builder.hh"
#include "trace/trace_io.hh"

using namespace tp;

namespace {

trace::TaskTrace
buildPipeline(std::size_t batches, std::size_t shards,
              std::uint64_t seed)
{
    trace::TraceBuilder b("align-pipeline", seed);

    // Task types are declared once, like OmpSs task declarations.
    trace::KernelProfile align;
    align.loadFrac = 0.30;
    align.branchFrac = 0.16;
    align.ilpMean = 4.0;
    align.pattern.kind = trace::MemPatternKind::RandomUniform;
    align.pattern.sharedFrac = 0.20; // the reference genome
    align.pattern.sharedFootprint = 512 * 1024;
    const TaskTypeId align_t = b.addTaskType("align", align);

    trace::KernelProfile sort;
    sort.loadFrac = 0.28;
    sort.storeFrac = 0.14;
    sort.branchFrac = 0.18;
    const TaskTypeId sort_t = b.addTaskType("sort", sort);

    trace::KernelProfile report;
    report.loadFrac = 0.35;
    report.storeFrac = 0.10;
    const TaskTypeId report_t = b.addTaskType("report", report);

    for (std::size_t batch = 0; batch < batches; ++batch) {
        std::vector<TaskInstanceId> sorted;
        for (std::size_t s = 0; s < shards; ++s) {
            // Read lengths vary: heavy-tailed alignment work.
            const InstCount insts = static_cast<InstCount>(
                b.rng().logNormal(12000.0, 0.4));
            const TaskInstanceId a =
                b.createTask(align_t, std::max<InstCount>(insts, 512),
                             96 * 1024);
            const TaskInstanceId so =
                b.createTask(sort_t, insts / 3 + 500, 64 * 1024);
            b.addDependency(a, so);
            sorted.push_back(so);
        }
        const TaskInstanceId rep =
            b.createTask(report_t, 6000, 32 * 1024);
        for (TaskInstanceId so : sorted)
            b.addDependency(so, rep);
        b.barrier(); // taskwait between batches
    }
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        {{"batches", "pipeline batches to build (default 6)"},
         {"shards", "align/sort shards per batch (default 64)"},
         {"threads", "simulated thread count (default 8)"},
         {"save",
          "serialize the built trace to this path (default "
          "pipeline.trace); JobSpec::traceFile can replay it"}});
    const std::size_t batches = args.getUint("batches", 6);
    const std::size_t shards = args.getUint("shards", 64);
    const auto threads =
        static_cast<std::uint32_t>(args.getUint("threads", 8));

    const trace::TaskTrace t = buildPipeline(batches, shards, 2026);
    const trace::TraceStats ts = t.stats();
    std::printf("pipeline: %zu types, %zu instances, %zu deps, "
                "%zu epochs\n",
                ts.numTypes, ts.numInstances, ts.numDependencies,
                ts.numEpochs);

    if (args.has("save")) {
        const std::string path =
            args.getString("save", "pipeline.trace");
        trace::serializeTrace(t, path);
        std::printf("trace written to %s\n", path.c_str());
    }

    harness::RunSpec spec;
    spec.arch = cpu::highPerformanceConfig();
    spec.threads = threads;

    const sim::SimResult ref = harness::runDetailed(t, spec);
    const harness::SampledOutcome sam = harness::runSampled(
        t, spec, sampling::SamplingParams::lazy());
    const harness::ErrorSpeedup es = harness::compare(ref, sam.result);

    std::printf("detailed: %s cycles (%.2fs host)\n",
                fmtCount(ref.totalCycles).c_str(), ref.wallSeconds);
    std::printf("TaskPoint: %s cycles (%.2fs host) — error %.2f%%, "
                "speedup %.1fx\n",
                fmtCount(sam.result.totalCycles).c_str(),
                sam.result.wallSeconds, es.errorPct, es.wallSpeedup);
    return 0;
}
