/**
 * @file
 * Sampling diagnostics: why does TaskPoint's prediction deviate?
 *
 *   ./sampling_diagnostics [--workload=canneal] [--threads=8]
 *                          [--arch=highperf] [--scale=0.125]
 *
 * Runs the detailed reference and a lazy-sampled simulation with
 * per-task records and prints, per task type: the reference mean IPC
 * over all instances, the reference mean over the first instances
 * (what TaskPoint samples), and the IPC the sampled run applied in
 * fast mode. Large gaps between the first-instances mean and the
 * overall mean indicate cold-start (warmup) bias; gaps between the
 * sampled-run prediction and the reference indicate contention or
 * phase effects.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/statistics.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "sampling/taskpoint.hh"

using namespace tp;

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        {{"workload", "workload to diagnose (default canneal)"},
         {"threads", "simulated thread count (default 8)"},
         {"arch",
          "architecture: highperf or lowpower (default highperf)"},
         {"scale",
          "task-instance count multiplier (default 0.125)"},
         {"dump",
          "also dump the first N sampled-run task records "
          "(default 48)"},
         targetErrorCliOption()});
    const std::string name = args.getString("workload", "canneal");
    const auto threads =
        static_cast<std::uint32_t>(args.getUint("threads", 8));

    work::WorkloadParams wp;
    wp.scale = args.getDouble("scale", 0.125);
    const trace::TaskTrace t = work::generateWorkload(name, wp);

    harness::RunSpec spec;
    spec.arch =
        cpu::archConfigByName(args.getString("arch", "highperf"));
    spec.threads = threads;
    spec.recordTasks = true;

    const double targetError = targetErrorFlag(args);
    const sampling::SamplingParams params =
        targetError > 0.0
            ? sampling::SamplingParams::adaptive(targetError)
            : sampling::SamplingParams::lazy();

    const sim::SimResult ref = harness::runDetailed(t, spec);
    const harness::SampledOutcome sam =
        harness::runSampled(t, spec, params);
    const harness::ErrorSpeedup es = harness::compare(ref, sam.result);

    // Reference IPC per type: overall and "early" (first 8 detailed
    // completions of that type — roughly what sampling sees).
    std::map<TaskTypeId, std::vector<double>> ref_all, ref_early;
    for (const sim::TaskRecord &r : ref.tasks) {
        ref_all[r.type].push_back(r.ipc);
        if (ref_early[r.type].size() < 8)
            ref_early[r.type].push_back(r.ipc);
    }
    // Sampled-run measurements and applied predictions per type.
    std::map<TaskTypeId, std::vector<double>> sam_detailed, sam_fast;
    for (const sim::TaskRecord &r : sam.result.tasks) {
        if (r.mode == sim::SimMode::Detailed)
            sam_detailed[r.type].push_back(r.ipc);
        else
            sam_fast[r.type].push_back(r.ipc);
    }

    std::printf("%s, %u threads: error %.2f%%, speedup %.1fx\n"
                "tasks: %llu warmup, %llu sample, %llu fast; "
                "resamples: %llu (period %llu, new-type %llu, "
                "concurrency %llu)\n\n",
                t.name().c_str(), threads, es.errorPct, es.wallSpeedup,
                static_cast<unsigned long long>(
                    sam.stats.warmupTasks),
                static_cast<unsigned long long>(
                    sam.stats.sampleTasks),
                static_cast<unsigned long long>(sam.stats.fastTasks),
                static_cast<unsigned long long>(sam.stats.resamples),
                static_cast<unsigned long long>(
                    sam.stats.resamplesPeriod),
                static_cast<unsigned long long>(
                    sam.stats.resamplesNewType),
                static_cast<unsigned long long>(
                    sam.stats.resamplesConcurrency));

    // IPC evolution over the run: per-type mean IPC in 10 buckets of
    // completion order. A flat line means samples are representative.
    TextTable timeline("reference IPC timeline (10 buckets, "
                       "completion order)");
    {
        std::vector<std::string> hdr = {"type"};
        for (int bkt = 0; bkt < 10; ++bkt)
            hdr.push_back(strprintf("b%d", bkt));
        timeline.setHeader(hdr);
        std::map<TaskTypeId, std::vector<double>> series;
        for (const sim::TaskRecord &r : ref.tasks)
            series[r.type].push_back(r.ipc);
        for (const auto &[type, ipcs] : series) {
            std::vector<std::string> row = {t.type(type).name};
            const std::size_t n = ipcs.size();
            for (int bkt = 0; bkt < 10; ++bkt) {
                const std::size_t lo = n * bkt / 10;
                const std::size_t hi =
                    std::max<std::size_t>(n * (bkt + 1) / 10, lo + 1);
                std::vector<double> slice(
                    ipcs.begin() + static_cast<long>(lo),
                    ipcs.begin() +
                        static_cast<long>(std::min(hi, n)));
                row.push_back(
                    slice.empty() ? "-" : fmtDouble(mean(slice), 3));
            }
            timeline.addRow(row);
        }
        timeline.print();
        std::printf("\n");
    }

    std::printf("phase log (%zu changes): ", sam.phaseLog.size());
    for (std::size_t i = 0;
         i < std::min<std::size_t>(sam.phaseLog.size(), 24); ++i) {
        std::printf("%s@%llu ",
                    sampling::toString(sam.phaseLog[i].to),
                    static_cast<unsigned long long>(
                        sam.phaseLog[i].at));
    }
    if (sam.adaptive.enabled) {
        const sampling::AdaptiveDiagnostics &d = sam.adaptive;
        std::printf("adaptive: target %.2f%%, reported CI %.2f%%, "
                    "stop cycle %llu, realloc rounds %llu, stopped "
                    "by %s\nper-stratum detailed samples:",
                    100.0 * d.targetError,
                    100.0 * d.finalRelHalfWidth,
                    static_cast<unsigned long long>(d.stopCycle),
                    static_cast<unsigned long long>(
                        d.allocationRounds),
                    d.cutoffStopped ? "rare cutoff" : "CI target");
        for (std::size_t ty = 0; ty < d.strataSamples.size(); ++ty) {
            std::printf(" %s=%llu", t.type(ty).name.c_str(),
                        static_cast<unsigned long long>(
                            d.strataSamples[ty]));
        }
        std::printf("\n");
    }
    std::printf("\nvalid-history fill at end:");
    for (std::size_t ty = 0; ty < sam.validHistSizes.size(); ++ty) {
        std::printf(" %s=%zu", t.type(ty).name.c_str(),
                    sam.validHistSizes[ty]);
    }
    std::printf("\n\n");

    // Applied fast-IPC evolution in the sampled run (10 buckets).
    {
        TextTable applied_tl("sampled-run applied fast IPC timeline");
        std::vector<std::string> hdr = {"type"};
        for (int bkt = 0; bkt < 10; ++bkt)
            hdr.push_back(strprintf("b%d", bkt));
        applied_tl.setHeader(hdr);
        std::map<TaskTypeId, std::vector<double>> series;
        for (const sim::TaskRecord &r : sam.result.tasks) {
            if (r.mode == sim::SimMode::Fast)
                series[r.type].push_back(r.ipc);
        }
        for (const auto &[type, ipcs] : series) {
            std::vector<std::string> row = {t.type(type).name};
            const std::size_t n = ipcs.size();
            for (int bkt = 0; bkt < 10; ++bkt) {
                const std::size_t lo = n * bkt / 10;
                const std::size_t hi =
                    std::max<std::size_t>(n * (bkt + 1) / 10, lo + 1);
                std::vector<double> slice(
                    ipcs.begin() + static_cast<long>(lo),
                    ipcs.begin() +
                        static_cast<long>(std::min(hi, n)));
                row.push_back(
                    slice.empty() ? "-" : fmtDouble(mean(slice), 3));
            }
            applied_tl.addRow(row);
        }
        applied_tl.print();
        std::printf("\n");
    }

    if (args.has("dump")) {
        const auto n = static_cast<std::size_t>(
            args.getUint("dump", 48));
        std::printf("first %zu sampled-run task records "
                    "(completion order):\n", n);
        for (std::size_t i = 0;
             i < std::min(n, sam.result.tasks.size()); ++i) {
            const sim::TaskRecord &r = sam.result.tasks[i];
            std::printf("  id=%5llu type=%u(%s) thr=%2u mode=%s "
                        "insts=%7llu start=%9llu dur=%8llu "
                        "ipc=%.3f\n",
                        static_cast<unsigned long long>(r.id), r.type,
                        t.type(r.type).name.c_str(), r.thread,
                        r.mode == sim::SimMode::Detailed ? "det "
                                                         : "fast",
                        static_cast<unsigned long long>(r.insts),
                        static_cast<unsigned long long>(r.start),
                        static_cast<unsigned long long>(
                            r.end - r.start),
                        r.ipc);
        }
        std::printf("\n");
    }

    TextTable table("per-type IPC diagnosis");
    table.setHeader({"type", "#inst", "ref IPC", "ref early",
                     "sampled meas", "applied fast", "#fast"});
    for (const auto &[type, ipcs] : ref_all) {
        const auto &tt = t.type(type);
        const auto &early_v = ref_early[type];
        const auto &meas_v = sam_detailed[type];
        const auto &fast_v = sam_fast[type];
        const auto cell = [](const std::vector<double> &xs) {
            return xs.empty() ? std::string("-")
                              : fmtDouble(mean(xs), 3);
        };
        table.addRow({tt.name, std::to_string(ipcs.size()),
                      cell(ipcs), cell(early_v), cell(meas_v),
                      cell(fast_v),
                      std::to_string(fast_v.size())});
    }
    table.print();
    return 0;
}
