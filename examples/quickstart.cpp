/**
 * @file
 * Quickstart: simulate one benchmark in full detail and with
 * TaskPoint's lazy sampling, then compare.
 *
 *   ./quickstart [--workload=cholesky] [--threads=8]
 *                [--arch=highperf|lowpower] [--scale=0.125]
 *
 * This walks through the whole public API: generate a task trace,
 * run the detailed reference, run the sampled simulation, and report
 * execution-time error and speedup.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace tp;

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        {{"workload", "workload to simulate (default cholesky)"},
         {"threads", "simulated thread count (default 8)"},
         {"arch",
          "architecture: highperf or lowpower (default highperf)"},
         {"scale",
          "task-instance count multiplier (default 0.125)"}});

    const std::string name = args.getString("workload", "cholesky");
    const auto threads =
        static_cast<std::uint32_t>(args.getUint("threads", 8));
    const std::string arch = args.getString("arch", "highperf");

    // 1. Generate the application's task trace.
    work::WorkloadParams wp;
    wp.scale = args.getDouble("scale", 0.125);
    const trace::TaskTrace t = work::generateWorkload(name, wp);
    const trace::TraceStats ts = t.stats();
    std::printf("workload %s: %zu task types, %zu instances, %s "
                "instructions\n",
                t.name().c_str(), ts.numTypes, ts.numInstances,
                fmtCount(ts.totalInstructions).c_str());

    // 2. Full-detailed reference simulation.
    harness::RunSpec spec;
    spec.arch = cpu::archConfigByName(arch);
    spec.threads = threads;
    const sim::SimResult ref = harness::runDetailed(t, spec);
    std::printf("detailed : %s cycles  (%.2fs host, %llu tasks "
                "detailed)\n",
                fmtCount(ref.totalCycles).c_str(), ref.wallSeconds,
                static_cast<unsigned long long>(ref.detailedTasks));

    // 3. TaskPoint sampled simulation (lazy policy: P = infinity).
    const harness::SampledOutcome sampled =
        harness::runSampled(t, spec, sampling::SamplingParams::lazy());
    std::printf("sampled  : %s cycles  (%.2fs host, %llu detailed / "
                "%llu fast tasks, %llu resamples)\n",
                fmtCount(sampled.result.totalCycles).c_str(),
                sampled.result.wallSeconds,
                static_cast<unsigned long long>(
                    sampled.result.detailedTasks),
                static_cast<unsigned long long>(
                    sampled.result.fastTasks),
                static_cast<unsigned long long>(
                    sampled.stats.resamples));

    // 4. Compare.
    const harness::ErrorSpeedup es =
        harness::compare(ref, sampled.result);
    std::printf("error %.2f%%  speedup %.1fx  (detail fraction "
                "%.1f%%)\n",
                es.errorPct, es.wallSpeedup,
                100.0 * es.detailFraction);
    return 0;
}
