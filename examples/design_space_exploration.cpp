/**
 * @file
 * Design-space exploration — the use case the paper recommends lazy
 * sampling for (Section V, Summary): evaluating many architecture
 * variants quickly, then verifying the short-listed ones with the
 * slower periodic policy.
 *
 *   ./design_space_exploration [--workload=cholesky] [--threads=16]
 *                              [--scale=0.0625]
 *
 * The exploration sweeps ROB size and L2 capacity around the
 * high-performance configuration, ranks the variants by predicted
 * execution time under lazy sampling, and re-evaluates the best
 * variant with periodic sampling (P=250) as the paper's suggested
 * second phase.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace tp;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv, {"workload", "threads", "scale"});
    const std::string name = args.getString("workload", "cholesky");
    const auto threads =
        static_cast<std::uint32_t>(args.getUint("threads", 16));

    work::WorkloadParams wp;
    wp.scale = args.getDouble("scale", 0.0625);
    const trace::TaskTrace t = work::generateWorkload(name, wp);

    struct Variant
    {
        std::string label;
        cpu::ArchConfig arch;
        Cycles predicted = 0;
        double wall = 0.0;
    };

    std::vector<Variant> variants;
    for (std::uint32_t rob : {96u, 168u, 256u}) {
        for (std::uint64_t l2kb : {1024u, 2048u, 4096u}) {
            cpu::ArchConfig a = cpu::highPerformanceConfig();
            a.core.robSize = rob;
            a.memory.l2.sizeBytes = l2kb * 1024;
            Variant v;
            v.label = strprintf("rob=%u l2=%lluKiB", rob,
                                static_cast<unsigned long long>(
                                    l2kb));
            v.arch = a;
            variants.push_back(v);
        }
    }

    // Phase 1: lazy sampling across the whole space.
    std::printf("phase 1: lazy sampling over %zu variants of %s "
                "(%u threads)\n",
                variants.size(), t.name().c_str(), threads);
    for (Variant &v : variants) {
        harness::RunSpec spec;
        spec.arch = v.arch;
        spec.threads = threads;
        const harness::SampledOutcome out = harness::runSampled(
            t, spec, sampling::SamplingParams::lazy());
        v.predicted = out.result.totalCycles;
        v.wall = out.result.wallSeconds;
    }
    std::sort(variants.begin(), variants.end(),
              [](const Variant &a, const Variant &b) {
                  return a.predicted < b.predicted;
              });

    TextTable table("predicted execution time (lazy sampling)");
    table.setHeader({"rank", "variant", "cycles", "host [s]"});
    for (std::size_t i = 0; i < variants.size(); ++i) {
        table.addRow({std::to_string(i + 1), variants[i].label,
                      fmtCount(variants[i].predicted),
                      fmtDouble(variants[i].wall, 2)});
    }
    table.print();

    // Phase 2: confirm the winner with periodic sampling.
    const Variant &best = variants.front();
    harness::RunSpec spec;
    spec.arch = best.arch;
    spec.threads = threads;
    const harness::SampledOutcome confirm = harness::runSampled(
        t, spec, sampling::SamplingParams::periodic(250));
    std::printf("\nphase 2: periodic confirmation of '%s': %s cycles "
                "(lazy predicted %s, delta %.2f%%)\n",
                best.label.c_str(),
                fmtCount(confirm.result.totalCycles).c_str(),
                fmtCount(best.predicted).c_str(),
                100.0 *
                    (double(confirm.result.totalCycles) -
                     double(best.predicted)) /
                    double(confirm.result.totalCycles));
    return 0;
}
