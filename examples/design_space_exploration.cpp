/**
 * @file
 * Design-space exploration — the use case the paper recommends lazy
 * sampling for (Section V, Summary): evaluating many architecture
 * variants quickly, then verifying the short-listed ones with the
 * slower periodic policy.
 *
 *   ./design_space_exploration [--workload=cholesky] [--threads=16]
 *                              [--scale=0.0625] [--jobs=N|auto]
 *
 * The exploration sweeps ROB size and L2 capacity around the
 * high-performance configuration, ranks the variants by predicted
 * execution time under lazy sampling, and re-evaluates the best
 * variant with periodic sampling (P=250) as the paper's suggested
 * second phase. All variants are independent jobs of one
 * ExperimentPlan, so phase 1 fans out across a worker pool (--jobs);
 * predicted cycles are bit-identical for any worker count, and with
 * a cache directory both the lazy sweep and the phase-2 reference
 * replay on reruns.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/statistics.hh"
#include "common/table.hh"
#include "harness/batch_runner.hh"
#include "harness/experiment.hh"
#include "harness/result_cache.hh"

using namespace tp;

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        {{"workload", "workload to explore (default cholesky)"},
         {"threads", "simulated thread count (default 16)"},
         {"scale",
          "task-instance count multiplier (default 0.0625)"},
         jobsCliOption(), cacheDirCliOption(),
         cacheModeCliOption()});
    const std::string name = args.getString("workload", "cholesky");
    const auto threads =
        static_cast<std::uint32_t>(args.getUint("threads", 16));
    const std::size_t jobs = jobsFlag(args, 1);

    work::WorkloadParams wp;
    wp.scale = args.getDouble("scale", 0.0625);

    // Phase 1: lazy sampling across the whole space, in parallel.
    // Every variant names the same (workload, params), so the runner
    // generates one trace and shares it across the sweep.
    harness::ExperimentPlan plan;
    // Keep every variant (and phase 2's confirmation rerun) on the
    // workload's own seed rather than per-index derived ones.
    plan.deriveSeeds = false;
    for (std::uint32_t rob : {96u, 168u, 256u}) {
        for (std::uint64_t l2kb : {1024u, 2048u, 4096u}) {
            harness::JobSpec j;
            j.label = strprintf("rob=%u l2=%lluKiB", rob,
                                static_cast<unsigned long long>(
                                    l2kb));
            j.workload = name;
            j.workloadParams = wp;
            j.spec.arch = cpu::highPerformanceConfig();
            j.spec.arch.core.robSize = rob;
            j.spec.arch.memory.l2.sizeBytes = l2kb * 1024;
            j.spec.threads = threads;
            j.sampling = sampling::SamplingParams::lazy();
            plan.jobs.push_back(j);
        }
    }

    std::printf("phase 1: lazy sampling over %zu variants of %s "
                "(%u threads, %zu jobs)\n",
                plan.jobs.size(), name.c_str(), threads, jobs);
    harness::BatchOptions opts;
    opts.jobs = jobs;
    // With a shared cache dir, the lazy sweep itself and any
    // Reference/Both-mode jobs of a campaign reuse prior work.
    const std::unique_ptr<harness::ResultCache> cache =
        harness::resultCacheFromCli(args);
    opts.cache = cache.get();
    const harness::BatchRunner runner(opts);
    const std::vector<harness::BatchResult> results =
        runner.run(plan);

    std::vector<std::size_t> ranked(results.size());
    for (std::size_t i = 0; i < ranked.size(); ++i)
        ranked[i] = i;
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&results](std::size_t a, std::size_t b) {
                         return results[a].sampled->result.totalCycles <
                                results[b].sampled->result.totalCycles;
                     });

    TextTable table("predicted execution time (lazy sampling)");
    table.setHeader({"rank", "variant", "cycles", "host [s]"});
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const harness::BatchResult &r = results[ranked[i]];
        table.addRow({std::to_string(i + 1), r.label,
                      fmtCount(r.sampled->result.totalCycles),
                      fmtDouble(r.sampled->result.wallSeconds, 2)});
    }
    table.print();

    // Phase 2: confirm the winner with periodic sampling against
    // the detailed reference. The reference is the expensive part,
    // and exactly what the result cache shares across reruns and
    // other drivers exploring the same design point.
    const harness::BatchResult &best = results[ranked.front()];
    harness::ExperimentPlan confirmPlan;
    confirmPlan.deriveSeeds = false;
    confirmPlan.jobs.push_back(plan.jobs[best.index]);
    harness::JobSpec &confirmJob = confirmPlan.jobs.back();
    confirmJob.label = best.label + " confirmation";
    confirmJob.sampling = sampling::SamplingParams::periodic(250);
    confirmJob.mode = harness::BatchMode::Both;
    const harness::BatchResult confirm =
        runner.run(confirmPlan).front();
    if (cache)
        harness::progress(cache->statsLine());

    const Cycles predicted = best.sampled->result.totalCycles;
    const Cycles periodic = confirm.sampled->result.totalCycles;
    std::printf("\nphase 2: periodic confirmation of '%s': %s cycles "
                "(lazy predicted %s, delta %.2f%%)\n",
                best.label.c_str(), fmtCount(periodic).c_str(),
                fmtCount(predicted).c_str(),
                100.0 * (double(periodic) - double(predicted)) /
                    double(periodic));
    std::printf("detailed reference%s: %s cycles; periodic error "
                "%.2f%%, lazy error %.2f%%\n",
                confirm.referenceFromCache ? " (cached)" : "",
                fmtCount(confirm.reference->totalCycles).c_str(),
                confirm.comparison->errorPct,
                absPctError(double(predicted),
                            double(confirm.reference->totalCycles)));
    return 0;
}
